//! Zero-dependency Prometheus text exposition, fixed-bucket latency
//! histograms, and rolling SLO windows.
//!
//! Three pieces, all dependency-free:
//!
//! - [`PromWriter`] renders the Prometheus text format (version 0.0.4:
//!   `# HELP` / `# TYPE` comments followed by `name{labels} value`
//!   samples) for the serve layer's `GET /metrics` endpoint.
//! - [`FixedHistogram`] counts observations into a fixed, publicly
//!   known bucket ladder ([`LATENCY_BUCKETS_US`]) — unlike
//!   [`crate::hist::Histogram`]'s log-linear internals, Prometheus
//!   histograms need stable, queryable `le` boundaries.
//! - [`SloWindow`] keeps a ring of per-second slots so `/metrics` and
//!   `/stats` can report *rolling* 1-min / 5-min success, shed, and
//!   degraded rates plus a windowed p99, instead of lifetime
//!   aggregates that never move again after a traffic shift.
//!
//! [`validate`] parses an exposition back — line format, known types,
//! histogram bucket monotonicity, `+Inf` terminal bucket — and returns
//! the samples so harnesses (`xp_serve`, `metrics_check`) can both lint
//! the format and reconcile counter values against client-side tallies.

use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// Fixed `le` boundaries (microseconds) for explain-latency histograms:
/// 100 µs to 5 s, roughly 2.5× apart, plus the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_US: [u64; 15] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

const N_BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1; // + the +Inf bucket

/// A histogram over the fixed [`LATENCY_BUCKETS_US`] ladder, counting
/// values in microseconds. Buckets here are *non*-cumulative; the
/// writer accumulates when rendering `_bucket` series.
#[derive(Clone)]
pub struct FixedHistogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram::new()
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> FixedHistogram {
        FixedHistogram {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    fn bucket_index(us: u64) -> usize {
        LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(N_BUCKETS - 1)
    }

    /// Count one observation of `us` microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (µs, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket-upper-bound quantile estimate in µs (the `+Inf` bucket
    /// reports the largest finite boundary — good enough for an SLO
    /// gauge, exact values live in `/stats`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1]);
            }
        }
        LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1]
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

// ----------------------------------------------------------------------
// Rolling SLO windows
// ----------------------------------------------------------------------

/// How a request finished, for windowed SLO accounting. `Degraded`
/// counts as a success that served a reduced answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// 200 with the full fidelity floor.
    Ok,
    /// 200 but the recovery ladder or pressure floor degraded the answer.
    Degraded,
    /// 429 — load shedding.
    Shed,
    /// Any other typed error (4xx/5xx/504).
    Error,
}

#[derive(Clone)]
struct Slot {
    sec: u64,
    total: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    errors: u64,
    latency: FixedHistogram,
}

impl Slot {
    fn empty(sec: u64) -> Slot {
        Slot {
            sec,
            total: 0,
            ok: 0,
            degraded: 0,
            shed: 0,
            errors: 0,
            latency: FixedHistogram::new(),
        }
    }
}

/// Aggregate view over a rolling window.
#[derive(Clone, Default, Debug)]
pub struct WindowSummary {
    /// Window width that was asked for, in seconds.
    pub window_secs: u64,
    /// Requests finished inside the window.
    pub total: u64,
    /// Full-fidelity successes.
    pub ok: u64,
    /// Degraded successes.
    pub degraded: u64,
    /// Shed (429) answers.
    pub shed: u64,
    /// Typed errors.
    pub errors: u64,
    /// `(ok + degraded) / total` (1.0 on an empty window — no traffic
    /// is not an SLO breach).
    pub success_rate: f64,
    /// `shed / total` (0.0 on an empty window).
    pub shed_rate: f64,
    /// `degraded / total` (0.0 on an empty window).
    pub degraded_rate: f64,
    /// Bucket-estimate p99 latency (µs) of requests that recorded one.
    pub p99_us: u64,
    /// Observations behind `p99_us`.
    pub latency_count: u64,
}

/// The longest window any caller may ask for, in seconds.
pub const MAX_WINDOW_SECS: u64 = 300;

/// A ring of [`MAX_WINDOW_SECS`] per-second slots. Internally locked:
/// server worker threads record concurrently, `/metrics` scrapes
/// summarize concurrently. Time is monotonic (process-relative), so
/// wall-clock jumps never corrupt the ring.
pub struct SloWindow {
    slots: Mutex<Vec<Slot>>,
}

fn monotonic_sec() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs()
}

impl Default for SloWindow {
    fn default() -> Self {
        SloWindow::new()
    }
}

impl SloWindow {
    /// An empty window ring.
    pub fn new() -> SloWindow {
        SloWindow {
            slots: Mutex::new(
                (0..MAX_WINDOW_SECS as usize)
                    .map(|_| Slot::empty(u64::MAX))
                    .collect(),
            ),
        }
    }

    /// Record one finished request at the current (monotonic) second.
    pub fn record(&self, outcome: Outcome, latency_us: Option<u64>) {
        self.record_at(monotonic_sec(), outcome, latency_us);
    }

    /// Record at an explicit second — the testable entry point.
    pub fn record_at(&self, sec: u64, outcome: Outcome, latency_us: Option<u64>) {
        let mut slots = self.slots.lock().expect("slo window lock");
        let idx = (sec % MAX_WINDOW_SECS) as usize;
        if slots[idx].sec != sec {
            slots[idx] = Slot::empty(sec);
        }
        let slot = &mut slots[idx];
        slot.total += 1;
        match outcome {
            Outcome::Ok => slot.ok += 1,
            Outcome::Degraded => slot.degraded += 1,
            Outcome::Shed => slot.shed += 1,
            Outcome::Error => slot.errors += 1,
        }
        if let Some(us) = latency_us {
            slot.latency.record(us);
        }
    }

    /// Summarize the last `window_secs` seconds (clamped to
    /// [`MAX_WINDOW_SECS`]) ending now.
    pub fn summary(&self, window_secs: u64) -> WindowSummary {
        self.summary_at(monotonic_sec(), window_secs)
    }

    /// Summarize ending at an explicit second — the testable entry
    /// point. A slot is inside the window when `now - sec < window`.
    pub fn summary_at(&self, now_sec: u64, window_secs: u64) -> WindowSummary {
        let window_secs = window_secs.clamp(1, MAX_WINDOW_SECS);
        let mut out = WindowSummary {
            window_secs,
            ..WindowSummary::default()
        };
        let mut latency = FixedHistogram::new();
        {
            let slots = self.slots.lock().expect("slo window lock");
            for slot in slots.iter() {
                if slot.sec > now_sec || now_sec - slot.sec >= window_secs {
                    continue;
                }
                out.total += slot.total;
                out.ok += slot.ok;
                out.degraded += slot.degraded;
                out.shed += slot.shed;
                out.errors += slot.errors;
                latency.merge(&slot.latency);
            }
        }
        if out.total > 0 {
            out.success_rate = (out.ok + out.degraded) as f64 / out.total as f64;
            out.shed_rate = out.shed as f64 / out.total as f64;
            out.degraded_rate = out.degraded as f64 / out.total as f64;
        } else {
            out.success_rate = 1.0;
        }
        out.p99_us = latency.quantile(0.99);
        out.latency_count = latency.count();
        out
    }
}

// ----------------------------------------------------------------------
// Prometheus text writer
// ----------------------------------------------------------------------

/// Renders the Prometheus text exposition format (0.0.4). Call
/// [`metric`](PromWriter::metric) once per metric family to emit the
/// `# HELP` / `# TYPE` header, then one or more samples.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn metric(&mut self, name: &str, kind: &str, help: &str) {
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// Emit one integer sample.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample(name, labels, value as f64);
    }

    /// Emit a full histogram family (header + cumulative `_bucket`
    /// series over [`LATENCY_BUCKETS_US`] + `_sum` + `_count`).
    pub fn histogram(&mut self, name: &str, help: &str, hist: &FixedHistogram) {
        self.metric(name, "histogram", help);
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &le) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += hist.bucket_counts()[i];
            self.sample_u64(&bucket, &[("le", &le.to_string())], cumulative);
        }
        self.sample_u64(&bucket, &[("le", "+Inf")], hist.count());
        self.sample_u64(&format!("{name}_sum"), &[], hist.sum());
        self.sample_u64(&format!("{name}_count"), &[], hist.count());
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

// ----------------------------------------------------------------------
// Exposition validator
// ----------------------------------------------------------------------

/// One parsed sample line of an exposition.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Sample name as written (`foo_bucket`, not the family `foo`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample's value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed, validated exposition.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples named `name`.
    pub fn named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single value of `name` with no label filter; `None` when
    /// absent or ambiguous.
    pub fn value(&self, name: &str) -> Option<f64> {
        let matches = self.named(name);
        match matches.as_slice() {
            [one] => Some(one.value),
            _ => None,
        }
    }

    /// Sum of every sample named `name` (0.0 when absent).
    pub fn sum(&self, name: &str) -> f64 {
        self.named(name).iter().map(|s| s.value).sum()
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b == b':')
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let eq = raw[i..]
            .find('=')
            .map(|p| i + p)
            .ok_or_else(|| format!("label without '=': {:?}", &raw[i..]))?;
        let key = raw[i..eq].trim().to_string();
        if !valid_label_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err(format!("label value for {key:?} is not quoted"));
        }
        let mut j = eq + 2;
        let mut val = String::new();
        loop {
            match bytes.get(j) {
                None => return Err(format!("unterminated label value for {key:?}")),
                Some(b'\\') => {
                    match bytes.get(j + 1) {
                        Some(b'\\') => val.push('\\'),
                        Some(b'"') => val.push('"'),
                        Some(b'n') => val.push('\n'),
                        other => return Err(format!("bad escape {other:?} in {key:?}")),
                    }
                    j += 2;
                }
                Some(b'"') => {
                    j += 1;
                    break;
                }
                Some(&b) => {
                    val.push(b as char);
                    j += 1;
                }
            }
        }
        out.push((key, val));
        match bytes.get(j) {
            None => break,
            Some(b',') => i = j + 1,
            Some(&b) => return Err(format!("unexpected {:?} after label value", b as char)),
        }
    }
    Ok(out)
}

fn histogram_problems(exposition: &Exposition, family: &str) -> Option<String> {
    let bucket_name = format!("{family}_bucket");
    let buckets = exposition.named(&bucket_name);
    if buckets.is_empty() {
        return Some(format!("histogram {family} has no _bucket samples"));
    }
    let mut prev = None::<(f64, f64)>; // (le, cumulative)
    let mut saw_inf = false;
    let mut last_cumulative = 0.0;
    for b in &buckets {
        let le = match b.label("le") {
            Some("+Inf") => f64::INFINITY,
            Some(v) => match v.parse::<f64>() {
                Ok(f) => f,
                Err(_) => return Some(format!("{bucket_name} has unparseable le={v:?}")),
            },
            None => return Some(format!("{bucket_name} sample missing le label")),
        };
        if let Some((ple, pcum)) = prev {
            if le <= ple {
                return Some(format!("{bucket_name} le values not increasing at le={le}"));
            }
            if b.value < pcum {
                return Some(format!(
                    "{bucket_name} cumulative counts decrease at le={le}"
                ));
            }
        }
        saw_inf |= le.is_infinite();
        last_cumulative = b.value;
        prev = Some((le, b.value));
    }
    if !saw_inf {
        return Some(format!("{bucket_name} missing the le=\"+Inf\" bucket"));
    }
    if let Some(count) = exposition.value(&format!("{family}_count")) {
        if (count - last_cumulative).abs() > 0.0 {
            return Some(format!(
                "{family}_count {count} != +Inf bucket {last_cumulative}"
            ));
        }
    } else {
        return Some(format!("histogram {family} missing _count"));
    }
    if exposition.value(&format!("{family}_sum")).is_none() {
        return Some(format!("histogram {family} missing _sum"));
    }
    None
}

/// Parse and lint a Prometheus text exposition. Checks: line format,
/// `# TYPE` declared (with a known type) before any sample of the
/// family, metric/label name charset, parseable finite sample values,
/// non-negative counters, and for histograms: increasing `le` ladder,
/// non-decreasing cumulative buckets, a terminal `+Inf` bucket that
/// equals `_count`, and `_sum` present. Returns the parsed samples on
/// success so callers can reconcile values.
pub fn validate(text: &str) -> Result<Exposition, String> {
    let mut types: Vec<(String, String)> = Vec::new(); // family -> type
    let mut exposition = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let family = parts.next().unwrap_or("").to_string();
                let kind = parts.next().unwrap_or("").trim().to_string();
                if !valid_metric_name(&family) {
                    return Err(format!("line {n}: bad metric name in TYPE: {family:?}"));
                }
                if !matches!(
                    kind.as_str(),
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                types.push((family, kind));
            } else if !rest.starts_with("HELP ") {
                return Err(format!("line {n}: unknown comment directive: {line:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: comment without '# ' prefix: {line:?}"));
        }
        // A sample: name[{labels}] value
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(p) => (&line[..p], &line[p..]),
            None => return Err(format!("line {n}: sample without a value: {line:?}")),
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let (labels, value_str) = if let Some(inner) = rest.strip_prefix('{') {
            let close = inner
                .rfind('}')
                .ok_or_else(|| format!("line {n}: unterminated label set"))?;
            (
                parse_labels(&inner[..close]).map_err(|e| format!("line {n}: {e}"))?,
                inner[close + 1..].trim(),
            )
        } else {
            (Vec::new(), rest.trim())
        };
        // Ignore an optional timestamp after the value.
        let value_tok = value_str.split_whitespace().next().unwrap_or("");
        let value = match value_tok {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            tok => tok
                .parse::<f64>()
                .map_err(|_| format!("line {n}: unparseable value {tok:?}"))?,
        };
        if value.is_nan() {
            return Err(format!("line {n}: NaN sample value for {name_part}"));
        }
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name_part.strip_suffix(suf)?;
                types
                    .iter()
                    .any(|(f, k)| f == base && k == "histogram")
                    .then(|| base.to_string())
            })
            .unwrap_or_else(|| name_part.to_string());
        let declared = types.iter().find(|(f, _)| *f == family);
        let Some((_, kind)) = declared else {
            return Err(format!(
                "line {n}: sample {name_part} has no preceding # TYPE"
            ));
        };
        if kind == "counter" && value < 0.0 {
            return Err(format!("line {n}: negative counter {name_part}"));
        }
        exposition.samples.push(Sample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    for (family, kind) in &types {
        if kind == "histogram" {
            if let Some(problem) = histogram_problems(&exposition, family) {
                return Err(problem);
            }
        }
    }
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_histogram_buckets_and_quantile() {
        let mut h = FixedHistogram::new();
        for us in [50, 200, 200, 900, 40_000, 9_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 50 + 200 + 200 + 900 + 40_000 + 9_000_000);
        // 50 -> le=100; 200 x2 -> le=250; 900 -> le=1000; 40k -> le=50k;
        // 9s -> +Inf.
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 2);
        assert_eq!(h.bucket_counts()[N_BUCKETS - 1], 1);
        assert_eq!(h.quantile(0.5), 250);
        assert_eq!(h.quantile(1.0), 5_000_000);
        assert_eq!(FixedHistogram::new().quantile(0.99), 0);
    }

    #[test]
    fn slo_window_rolls_and_rates() {
        let w = SloWindow::new();
        // 10 requests at t=100: 8 ok, 1 degraded, 1 shed.
        for _ in 0..8 {
            w.record_at(100, Outcome::Ok, Some(1_000));
        }
        w.record_at(100, Outcome::Degraded, Some(2_000));
        w.record_at(100, Outcome::Shed, None);
        let s = w.summary_at(100, 60);
        assert_eq!(s.total, 10);
        assert_eq!(s.ok, 8);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.shed, 1);
        assert!((s.success_rate - 0.9).abs() < 1e-12);
        assert!((s.shed_rate - 0.1).abs() < 1e-12);
        assert_eq!(s.latency_count, 9);
        // 60s later the 1-min window is empty again (success_rate
        // defaults to 1.0), but the 5-min window still sees them.
        let later = w.summary_at(160, 60);
        assert_eq!(later.total, 0);
        assert!((later.success_rate - 1.0).abs() < 1e-12);
        assert_eq!(w.summary_at(160, 300).total, 10);
        // Wrapping past MAX_WINDOW_SECS reclaims the slot.
        w.record_at(100 + MAX_WINDOW_SECS, Outcome::Error, None);
        let wrapped = w.summary_at(100 + MAX_WINDOW_SECS, 1);
        assert_eq!(wrapped.total, 1);
        assert_eq!(wrapped.errors, 1);
    }

    #[test]
    fn writer_output_validates_round_trip() {
        let mut h = FixedHistogram::new();
        h.record(700);
        h.record(90);
        let mut w = PromWriter::new();
        w.metric("gef_demo_requests_total", "counter", "Requests seen.");
        w.sample_u64("gef_demo_requests_total", &[("outcome", "ok")], 12);
        w.sample_u64("gef_demo_requests_total", &[("outcome", "shed")], 3);
        w.metric("gef_demo_queue_depth", "gauge", "Queued connections.");
        w.sample_u64("gef_demo_queue_depth", &[], 2);
        w.histogram("gef_demo_latency_us", "Latency (µs).", &h);
        let text = w.finish();
        let parsed = validate(&text).expect("writer output validates");
        assert_eq!(parsed.sum("gef_demo_requests_total"), 15.0);
        assert_eq!(parsed.value("gef_demo_queue_depth"), Some(2.0));
        assert_eq!(parsed.value("gef_demo_latency_us_count"), Some(2.0));
        let buckets = parsed.named("gef_demo_latency_us_bucket");
        assert_eq!(buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let untyped = "gef_x_total 3\n";
        assert!(validate(untyped).unwrap_err().contains("no preceding"));
        let bad_value = "# TYPE gef_x gauge\ngef_x abc\n";
        assert!(validate(bad_value).unwrap_err().contains("unparseable"));
        let neg_counter = "# TYPE gef_x counter\ngef_x -1\n";
        assert!(validate(neg_counter).unwrap_err().contains("negative"));
        let bad_hist = "# TYPE gef_h histogram\n\
                        gef_h_bucket{le=\"100\"} 5\n\
                        gef_h_bucket{le=\"200\"} 3\n\
                        gef_h_bucket{le=\"+Inf\"} 5\n\
                        gef_h_sum 10\ngef_h_count 5\n";
        assert!(validate(bad_hist).unwrap_err().contains("decrease"));
        let no_inf = "# TYPE gef_h histogram\n\
                      gef_h_bucket{le=\"100\"} 5\ngef_h_sum 1\ngef_h_count 5\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
        let bad_type = "# TYPE gef_x widget\ngef_x 1\n";
        assert!(validate(bad_type)
            .unwrap_err()
            .contains("unknown metric type"));
    }

    #[test]
    fn validator_handles_labels_and_escapes() {
        let text = "# HELP gef_y a\\nmultiline help\n# TYPE gef_y gauge\n\
                    gef_y{path=\"a\\\"b\\\\c\",kind=\"x\"} 1.5\n";
        let parsed = validate(text).expect("escaped labels parse");
        let s = &parsed.samples[0];
        assert_eq!(s.label("path"), Some("a\"b\\c"));
        assert_eq!(s.label("kind"), Some("x"));
        assert!((s.value - 1.5).abs() < 1e-12);
    }
}
