//! # gef-par
//!
//! A small, zero-external-dependency parallel runtime for the GEF
//! workspace: a persistent scoped thread pool with **deterministic
//! chunked fan-out**. Every fan-out primitive here guarantees
//! *bit-identical* results at any thread count:
//!
//! * **Fixed chunk boundaries.** [`chunk_ranges`] partitions a workload
//!   from its length alone (never from the thread count), so the same
//!   input always produces the same task decomposition.
//! * **Ordered reduction.** [`map`] returns results in task-index order
//!   and [`map_reduce`] folds chunk results left-to-right in chunk-index
//!   order, so floating-point accumulation order never depends on which
//!   thread finished first.
//! * **Execution order is free, arithmetic order is not.** Threads may
//!   claim tasks in any interleaving; each task's arithmetic and every
//!   cross-task combination step are fixed by index.
//!
//! # Sizing
//!
//! The pool is sized by the `GEF_THREADS` environment variable, falling
//! back to [`std::thread::available_parallelism`]. Invalid values
//! (garbage, `0`, counts beyond [`MAX_THREADS`]) are clamped or replaced
//! by the fallback — never silently: the raw value is named through the
//! shared [`gef_trace::env`] warn-once path. `threads() == 1`
//! (and any workload of a single task) bypasses the pool entirely — no
//! worker threads are ever spawned and the fan-out primitives degenerate
//! to plain loops with zero synchronization. Tests and benchmarks can
//! override the size in-process with [`set_threads`].
//!
//! # Errors and cancellation
//!
//! Every fan-out primitive returns `Result<_, `[`ParError`]`>` instead
//! of panicking:
//!
//! * A panic inside a task is caught (on workers and on the serial
//!   path alike), the region is drained, and the **first** panic's
//!   payload comes back as [`ParError::TaskPanicked`] — the coordinator
//!   never re-raises, so callers under a no-panic gate get a typed
//!   error they can surface (e.g. as `GefError::WorkerPanicked`).
//! * The dispatching thread's **current budget** (its innermost
//!   [`gef_trace::budget::Budget::enter`] scope, else the process-global
//!   budget) is captured at dispatch and propagated onto the pool
//!   workers that join the region, so per-request scoped deadlines — as
//!   armed by `gef-serve` — bound their own fan-outs and nobody else's.
//!   Workers poll it between task claims, so a hard deadline or an
//!   explicit cancellation fires *mid-region*: remaining tasks are
//!   skipped, the latch still opens, and the call returns
//!   [`ParError::Cancelled`].
//!
//! With no budget armed and no panicking task, every primitive returns
//! `Ok` and behaves exactly as before — the checks are relaxed atomic
//! loads.
//!
//! # Fault-injection interplay
//!
//! Deterministic fault sites ([`gef_trace::fault`]) count *hits* in
//! invocation order, so running guarded code on racing worker threads
//! would make fault schedules thread-count-dependent. The runtime
//! therefore checks [`gef_trace::fault::any_armed`] at dispatch time, in
//! the coordinating thread: while any site is armed, every region runs
//! serially (in task-index order) on the coordinator, making fault hit
//! sequences invariant across `GEF_THREADS` settings by construction.
//!
//! # Telemetry
//!
//! When tracing is enabled and a region actually dispatches to the pool,
//! the runtime records a `par.workers` gauge (threads participating,
//! coordinator included), a `par.regions` counter, a `par.tasks`
//! histogram, and — for coarse regions that opt in via
//! [`Options::chunk_events`] — one `par.chunk` event per task at
//! dispatch time. Serial execution records none of these, so `par.*`
//! names are the only telemetry delta between thread counts (the CI
//! determinism diff excludes exactly that namespace). Worker threads
//! inherit the coordinator's span path (via
//! [`gef_trace::push_base_path`]), so spans opened inside tasks land at
//! the same hierarchical paths as in a serial run.
//!
//! When timeline profiling is on (`GEF_PROF`; see
//! [`gef_trace::timeline`]), every task additionally records a
//! begin/end pair on its executing thread's timeline — labelled via
//! [`Options::label`], carrying region id, chunk index, and task count
//! — and each pool worker registers its spawn index as its logical
//! thread id, so the exported chrome trace shows a stable per-worker
//! gantt of who ran which chunk when. Profiling changes *observation
//! only*: task claiming, chunking, and arithmetic order are untouched,
//! so results stay bit-identical with `GEF_PROF` on or off.
//!
//! # Example
//!
//! ```
//! // Results are in index order regardless of which thread ran what.
//! let squares = gef_par::map(8, gef_par::Options::default(), |i| i * i).unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Chunked sum: same chunk boundaries and fold order at any thread
//! // count, so the f64 result is bit-identical to a serial run.
//! let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
//! let total = gef_par::map_reduce(
//!     xs.len(),
//!     gef_par::Options::default(),
//!     |r| xs[r].iter().sum::<f64>(),
//!     |a, b| a + b,
//! )
//! .unwrap()
//! .unwrap_or(0.0);
//! let serial: f64 = gef_par::chunk_ranges(xs.len())
//!     .into_iter()
//!     .map(|r| xs[r].iter().sum::<f64>())
//!     .sum();
//! assert_eq!(total.to_bits(), serial.to_bits());
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard upper bound on the configured thread count (defensive cap for
/// absurd `GEF_THREADS` values).
pub const MAX_THREADS: usize = 512;

/// Maximum number of chunks [`chunk_ranges`] partitions a workload
/// into. A constant (never the thread count!) so that chunk boundaries
/// — and therefore per-chunk floating-point accumulation — depend only
/// on the workload length.
pub const MAX_CHUNKS: usize = 64;

// 0 = unresolved (read GEF_THREADS on first use), otherwise the count.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn threads_from_env() -> usize {
    let fallback = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(MAX_THREADS);
    // Rejections and clamps go through the workspace-wide warn-once
    // path in gef_trace::env (stderr naming the raw value, an
    // `env.invalid` recorder note, and a telemetry event).
    match gef_trace::env::read_u64("GEF_THREADS") {
        gef_trace::env::EnvValue::Unset => fallback,
        gef_trace::env::EnvValue::Parsed(0) => {
            gef_trace::env::warn_invalid("GEF_THREADS", "0", &format!("using {fallback}"));
            fallback
        }
        gef_trace::env::EnvValue::Parsed(n) if n as usize > MAX_THREADS => {
            gef_trace::env::warn_invalid(
                "GEF_THREADS",
                &n.to_string(),
                &format!("using {MAX_THREADS}"),
            );
            MAX_THREADS
        }
        gef_trace::env::EnvValue::Parsed(n) => n as usize,
        gef_trace::env::EnvValue::Invalid(raw) => {
            gef_trace::env::warn_invalid("GEF_THREADS", &raw, &format!("using {fallback}"));
            fallback
        }
    }
}

/// Typed failure of a parallel region. Replaces the runtime's former
/// coordinator re-panic: callers get a value they can propagate (the
/// GEF pipeline surfaces it as `GefError::WorkerPanicked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A task panicked. The region was drained (remaining tasks may
    /// have been skipped) and this carries the **first** panic's
    /// payload, rendered as a string.
    TaskPanicked {
        /// The panic payload (`&str`/`String` payloads verbatim,
        /// anything else as a placeholder).
        payload: String,
    },
    /// The region was cancelled before every task ran — an explicit
    /// [`gef_trace::budget::cancel`] or a passed hard deadline
    /// observed at a between-task poll.
    Cancelled,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::TaskPanicked { payload } => {
                write!(f, "a parallel task panicked: {payload}")
            }
            ParError::Cancelled => write!(f, "parallel region cancelled (deadline or cancel)"),
        }
    }
}

impl std::error::Error for ParError {}

/// Render a `catch_unwind` payload as a string (`&str` / `String`
/// payloads verbatim, anything else as a placeholder).
fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The configured thread count (coordinator included), resolving
/// `GEF_THREADS` on first call. `1` means strictly serial execution.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = threads_from_env();
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Override the thread count in-process (clamped to
/// `1..=`[`MAX_THREADS`]), taking precedence over `GEF_THREADS`.
///
/// Intended for tests and benchmarks that compare thread counts within
/// one process. Already-spawned workers are never torn down — lowering
/// the count simply parks the surplus.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Deterministic partition of `0..len` into at most [`MAX_CHUNKS`]
/// contiguous, equally sized ranges (the last may be shorter).
///
/// The boundaries are a pure function of `len` — thread count plays no
/// role — which is the foundation of the runtime's bit-identical
/// determinism contract.
///
/// ```
/// let ranges = gef_par::chunk_ranges(10);
/// assert_eq!(ranges.len(), 10); // len <= MAX_CHUNKS → unit chunks
/// let ranges = gef_par::chunk_ranges(1000);
/// assert_eq!(ranges.len(), 63);
/// assert_eq!(ranges[0], 0..16);
/// assert_eq!(ranges.last().unwrap().end, 1000);
/// ```
pub fn chunk_ranges(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size(len);
    (0..len)
        .step_by(size)
        .map(|s| s..(s + size).min(len))
        .collect()
}

/// The chunk length [`chunk_ranges`] uses for a workload of `len`
/// items (a pure function of `len`).
pub fn chunk_size(len: usize) -> usize {
    len.div_ceil(len.clamp(1, MAX_CHUNKS)).max(1)
}

/// Per-region dispatch options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Emit one `par.chunk` telemetry event per task at dispatch time.
    /// Reserve this for *coarse* regions (a handful of dispatches per
    /// run); hot inner loops such as per-leaf histogram builds would
    /// flood the bounded event log.
    pub chunk_events: bool,
    /// Name for this region's per-task timeline events when profiling
    /// (`GEF_PROF`) is on — the label shown on each worker's track in
    /// the exported chrome trace (e.g. `"forest.hist_build"`). Unlabeled
    /// regions record as `"par.task"`. Ignored while profiling is off.
    pub label: Option<&'static str>,
}

impl Options {
    /// Options for a coarse region: per-chunk events enabled.
    pub fn coarse() -> Options {
        Options {
            chunk_events: true,
            ..Options::default()
        }
    }

    /// Set the timeline label for this region's per-task events.
    pub fn with_label(mut self, label: &'static str) -> Options {
        self.label = Some(label);
        self
    }
}

/// Write-once result slots, indexed by task id.
///
/// Safety contract: the runtime claims every task index exactly once,
/// so each cell is touched by exactly one thread; the completion latch
/// (a mutex) orders all writes before the coordinator reads.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn empty(n: usize) -> Self {
        Slots {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    fn filled(items: Vec<T>) -> Self {
        Slots {
            cells: items
                .into_iter()
                .map(|v| UnsafeCell::new(Some(v)))
                .collect(),
        }
    }

    /// Store the result for task `i`.
    ///
    /// # Safety
    /// `i` must be claimed by exactly one thread (guaranteed by the
    /// runtime's atomic task claiming).
    unsafe fn put(&self, i: usize, v: T) {
        unsafe { *self.cells[i].get() = Some(v) };
    }

    /// Move task `i`'s input out of its slot.
    ///
    /// # Safety
    /// Same uniqueness requirement as [`Slots::put`].
    unsafe fn take(&self, i: usize) -> Option<T> {
        unsafe { (*self.cells[i].get()).take() }
    }

    fn into_results(self) -> Vec<Option<T>> {
        self.cells.into_iter().map(|c| c.into_inner()).collect()
    }
}

/// Lifetime-erased pointer to the region's task closure. Only
/// dereferenced between a successful task claim and its completion
/// acknowledgement, a window during which the coordinator is provably
/// still blocked in [`run_tasks`] (so the borrow is live).
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One parallel region: a task closure plus claim/completion state.
struct Region {
    task: TaskPtr,
    n_tasks: usize,
    next: AtomicUsize,
    completed: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
    /// First panic's payload, rendered as a string (first writer wins).
    panic_payload: Mutex<Option<String>>,
    /// Tasks that actually executed (vs. drained after panic/cancel).
    executed: AtomicUsize,
    /// Coordinator's span path at dispatch, propagated to workers so
    /// spans opened inside tasks nest identically to a serial run.
    base_path: Option<String>,
    /// The dispatching thread's current budget, captured at dispatch.
    /// Workers enter it for the duration of the region so checkpoints
    /// inside tasks observe the same deadline as the coordinator.
    budget: gef_trace::budget::Budget,
    /// The dispatching thread's trace context, captured at dispatch.
    /// Workers enter it so their recorder/timeline events attribute to
    /// the request that launched the region (same discipline as the
    /// budget above).
    ctx: gef_trace::ctx::TraceCtx,
    /// Timeline label for per-task begin/end events ([`Options::label`]).
    label: Option<&'static str>,
    /// Region id carried in per-task timeline event args.
    region_id: u64,
    /// Whether profiling was on at dispatch (captured once so every
    /// task of the region records — or none does).
    prof: bool,
}

impl Region {
    /// Claim and run tasks until none remain. Callable from any number
    /// of threads concurrently; each task index is claimed exactly once.
    ///
    /// Once a task has panicked or cancellation is requested (polled
    /// between claims, so a deadline fires mid-region), remaining
    /// claims are *drained*: acknowledged without running, so the
    /// completion latch still opens and nothing hangs.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            let draining = self.panicked.load(Ordering::Relaxed) || self.budget.cancel_requested();
            if !draining {
                // The claim → acknowledge window is what keeps the
                // erased borrow live; see TaskPtr.
                let task = unsafe { &*self.task.0 };
                if self.prof {
                    gef_trace::timeline::begin_with(
                        self.label.unwrap_or("par.task"),
                        &[
                            ("region", self.region_id as f64),
                            ("chunk", i as f64),
                            ("of", self.n_tasks as f64),
                        ],
                    );
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| task(i)));
                if self.prof {
                    gef_trace::timeline::end(self.label.unwrap_or("par.task"));
                }
                match outcome {
                    Ok(()) => {
                        self.executed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => {
                        let rendered = payload_to_string(payload.as_ref());
                        // Breadcrumb for incident dumps: the contained
                        // panic, on the thread that caught it.
                        gef_trace::recorder::note(
                            gef_trace::recorder::Kind::Panic,
                            "par.task_panicked",
                            &rendered,
                        );
                        let mut slot = self.panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(rendered);
                        }
                        drop(slot);
                        self.panicked.store(true, Ordering::Relaxed);
                    }
                }
            }
            let mut done = self.completed.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            if *done == self.n_tasks {
                self.all_done.notify_all();
            }
        }
    }

    /// Block until every task has been acknowledged. The latch mutex
    /// also publishes all task-side writes to the caller.
    fn wait(&self) {
        let mut done = self.completed.lock().unwrap_or_else(|e| e.into_inner());
        while *done < self.n_tasks {
            done = self.all_done.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Pool {
    /// Pending helper slots: one queue entry wakes one worker to join a
    /// region. Entries for already-finished regions are harmless — the
    /// worker finds no unclaimed task and moves on.
    queue: Mutex<Vec<Arc<Region>>>,
    ready: Condvar,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static REGION_ID: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(Vec::new()),
        ready: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let region = {
            let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(r) = q.pop() {
                    break r;
                }
                q = pool.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let _path = region.base_path.as_deref().map(gef_trace::push_base_path);
        // Run under the dispatcher's budget so checkpoints inside tasks
        // (and nested regions they launch) see the right deadline.
        let _budget = region.budget.enter();
        // And under its trace context, so task events carry the
        // dispatching request's id (entered even when empty: it must
        // shadow whatever the previous region left conceptually live).
        let _ctx = region.ctx.enter();
        region.work();
    }
}

/// Spawn workers until `want` exist (process lifetime; they park when
/// idle). Spawn failures are tolerated: the coordinator always
/// participates, so a region completes with however many threads exist.
fn ensure_workers(pool: &'static Pool, want: usize) {
    loop {
        let cur = pool.spawned.load(Ordering::Relaxed);
        if cur >= want {
            return;
        }
        if pool
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let spawned = std::thread::Builder::new()
            .name(format!("gef-par-{cur}"))
            .spawn(move || {
                // Bind this thread to its logical worker id so its
                // timeline track is `tid = cur + 1` at any GEF_THREADS
                // — registered even while profiling is off, in case it
                // turns on later in the process. The flight recorder
                // uses the same tid scheme for its per-thread ring.
                gef_trace::timeline::register_worker(cur);
                gef_trace::recorder::register_worker(cur);
                worker_loop(pool)
            });
        if spawned.is_err() {
            pool.spawned.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Spawn the pool's worker threads now (idempotent, cheap when already
/// up). Benchmarks call this once per process so the first timed region
/// does not pay thread start-up.
pub fn prestart() {
    let t = threads();
    if t > 1 {
        ensure_workers(pool(), t - 1);
    }
}

/// Core dispatch: run `task(i)` for every `i in 0..n_tasks`.
///
/// Serial (a plain in-order loop on the calling thread) whenever the
/// pool is sized to one thread, the region has a single task, or any
/// fault-injection site is armed (see the crate docs). Otherwise tasks
/// are claimed atomically by the coordinator plus up to `threads()-1`
/// pool workers; the call returns only after every task was claimed and
/// acknowledged. Panics inside tasks are caught (never re-raised) and
/// cancellation is polled between tasks on both paths; see [`ParError`].
fn run_tasks(n_tasks: usize, opts: Options, task: &(dyn Fn(usize) + Sync)) -> Result<(), ParError> {
    if n_tasks == 0 {
        return Ok(());
    }
    let t = threads();
    let prof = gef_trace::timeline::prof_enabled();
    if t <= 1 || n_tasks == 1 || gef_trace::fault::any_armed() {
        let label = opts.label.unwrap_or("par.task");
        let region_id = if prof {
            REGION_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        for i in 0..n_tasks {
            if gef_trace::budget::cancel_requested() {
                return Err(ParError::Cancelled);
            }
            if prof {
                gef_trace::timeline::begin_with(
                    label,
                    &[
                        ("region", region_id as f64),
                        ("chunk", i as f64),
                        ("of", n_tasks as f64),
                    ],
                );
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| task(i)));
            if prof {
                gef_trace::timeline::end(label);
            }
            if let Err(payload) = outcome {
                let rendered = payload_to_string(payload.as_ref());
                gef_trace::recorder::note(
                    gef_trace::recorder::Kind::Panic,
                    "par.task_panicked",
                    &rendered,
                );
                return Err(ParError::TaskPanicked { payload: rendered });
            }
        }
        return Ok(());
    }
    let helpers = (t - 1).min(n_tasks - 1);
    let pool = pool();
    ensure_workers(pool, helpers);

    let traced = gef_trace::enabled();
    let base_path = if traced {
        gef_trace::current_path()
    } else {
        None
    };
    let region_id = if prof || (traced && opts.chunk_events) {
        REGION_ID.fetch_add(1, Ordering::Relaxed)
    } else {
        0
    };
    if traced {
        let g = gef_trace::global();
        g.gauge("par.workers", (helpers + 1) as f64);
        gef_trace::counter!("par.regions").incr();
        g.record_value("par.tasks", n_tasks as u64);
        if opts.chunk_events {
            for i in 0..n_tasks {
                g.event(
                    "par.chunk",
                    &[
                        ("region", region_id as f64),
                        ("chunk", i as f64),
                        ("of", n_tasks as f64),
                    ],
                );
            }
        }
    }

    // Erase the task borrow's lifetime for the worker threads. Sound
    // because this function does not return before `region.wait()`
    // observes every task completed, and stale queue entries never
    // dereference the pointer (no unclaimed task remains).
    let erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(task as *const _)
    };
    let region = Arc::new(Region {
        task: TaskPtr(erased),
        n_tasks,
        next: AtomicUsize::new(0),
        completed: Mutex::new(0),
        all_done: Condvar::new(),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
        executed: AtomicUsize::new(0),
        base_path,
        budget: gef_trace::budget::current(),
        ctx: gef_trace::ctx::current(),
        label: opts.label,
        region_id,
        prof,
    });
    {
        let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..helpers {
            q.push(Arc::clone(&region));
        }
    }
    pool.ready.notify_all();
    region.work();
    region.wait();
    if region.panicked.load(Ordering::Relaxed) {
        let payload = region
            .panic_payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| "unknown panic payload".to_string());
        return Err(ParError::TaskPanicked { payload });
    }
    if region.executed.load(Ordering::Relaxed) < n_tasks {
        return Err(ParError::Cancelled);
    }
    Ok(())
}

/// Run `f(i)` for every `i in 0..n` on the pool (serial fallback per
/// the crate determinism rules). Side effects must be per-index
/// independent; ordering across indices is unspecified when parallel.
pub fn for_each_index(n: usize, opts: Options, f: impl Fn(usize) + Sync) -> Result<(), ParError> {
    run_tasks(n, opts, &f)
}

/// Compute `f(i)` for every `i in 0..n` and return the results in index
/// order — the parallel equivalent of `(0..n).map(f).collect()`.
pub fn map<T: Send>(
    n: usize,
    opts: Options,
    f: impl Fn(usize) -> T + Sync,
) -> Result<Vec<T>, ParError> {
    let slots = Slots::empty(n);
    run_tasks(n, opts, &|i| {
        let v = f(i);
        // Safety: each index is claimed exactly once.
        unsafe { slots.put(i, v) };
    })?;
    // Ok from run_tasks means every task executed, so every slot is
    // filled; the expect is unreachable by construction.
    #[allow(clippy::expect_used)]
    Ok(slots
        .into_results()
        .into_iter()
        .map(|o| o.expect("gef-par: completed task left no result"))
        .collect())
}

/// Feed each element of `tasks` (moved) to `f` along with its index.
/// The parallel equivalent of `tasks.into_iter().enumerate().for_each(..)`
/// for inputs that are not `Clone` (e.g. disjoint `&mut` sub-slices).
/// On cancellation, unconsumed inputs are dropped with the slots.
pub fn for_each_task<T: Send>(
    tasks: Vec<T>,
    opts: Options,
    f: impl Fn(usize, T) + Sync,
) -> Result<(), ParError> {
    let n = tasks.len();
    let slots = Slots::filled(tasks);
    run_tasks(n, opts, &|i| {
        // Safety: each index is claimed exactly once.
        if let Some(v) = unsafe { slots.take(i) } {
            f(i, v);
        }
    })
}

/// Run `f(chunk_index, range)` over the fixed [`chunk_ranges`]
/// partition of `0..len`.
pub fn for_each_chunk(
    len: usize,
    opts: Options,
    f: impl Fn(usize, Range<usize>) + Sync,
) -> Result<(), ParError> {
    let ranges = chunk_ranges(len);
    run_tasks(ranges.len(), opts, &|i| f(i, ranges[i].clone()))
}

/// Hand out disjoint mutable chunks of `data` (fixed [`chunk_size`]
/// boundaries): `f(chunk_index, start_offset, chunk)`. On an `Err`,
/// chunks that did not run keep their previous contents.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    opts: Options,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) -> Result<(), ParError> {
    let len = data.len();
    if len == 0 {
        return Ok(());
    }
    let size = chunk_size(len);
    let chunks: Vec<(usize, &mut [T])> = data
        .chunks_mut(size)
        .enumerate()
        .map(|(i, c)| (i * size, c))
        .collect();
    for_each_task(chunks, opts, |i, (start, chunk)| f(i, start, chunk))
}

/// Chunked map-reduce over `0..len`: `map_fn` runs per fixed chunk, and
/// the chunk results are folded **left-to-right in chunk-index order**
/// with `reduce` — so the combination order (and therefore any
/// floating-point rounding) is identical at every thread count. Returns
/// `Ok(None)` for an empty workload.
pub fn map_reduce<T: Send>(
    len: usize,
    opts: Options,
    map_fn: impl Fn(Range<usize>) -> T + Sync,
    reduce: impl FnMut(T, T) -> T,
) -> Result<Option<T>, ParError> {
    let ranges = chunk_ranges(len);
    let parts = map(ranges.len(), opts, |i| map_fn(ranges[i].clone()))?;
    Ok(parts.into_iter().reduce(reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    // `threads()` is process-global; tests that change it serialise.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        set_threads(n);
        let out = f();
        set_threads(1);
        out
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 63, 64, 65, 1000, 4096, 100_000] {
            let ranges = chunk_ranges(len);
            assert!(ranges.len() <= MAX_CHUNKS);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                assert!(r.end > r.start);
                cursor = r.end;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn map_returns_index_order() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for t in [1, 4] {
            let got = at_threads(t, || map(100, Options::default(), |i| i * 3).unwrap());
            assert_eq!(got, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_observe_dispatching_trace_context() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for t in [1, 4] {
            let seen: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
            at_threads(t, || {
                let _ctx = gef_trace::ctx::TraceCtx::with_id(0x77).enter();
                for_each_index(64, Options::default(), |i| {
                    seen[i].store(gef_trace::ctx::current_id(), Ordering::Relaxed);
                })
                .unwrap();
            });
            assert!(
                seen.iter().all(|s| s.load(Ordering::Relaxed) == 0x77),
                "threads={t}: every task sees the dispatcher's trace id"
            );
        }
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let xs: Vec<f64> = (0..50_000).map(|i| ((i * 37) as f64).sin() * 1e3).collect();
        let sum_at = |t: usize| {
            at_threads(t, || {
                map_reduce(
                    xs.len(),
                    Options::default(),
                    |r| xs[r].iter().sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
                .unwrap_or(0.0)
            })
        };
        let s1 = sum_at(1);
        for t in [2, 4, 8] {
            assert_eq!(s1.to_bits(), sum_at(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_every_slot() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for t in [1, 4] {
            let mut out = vec![0usize; 10_000];
            at_threads(t, || {
                for_each_chunk_mut(&mut out, Options::default(), |_, start, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = start + k;
                    }
                })
                .unwrap();
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        }
    }

    #[test]
    fn for_each_task_consumes_each_input_once() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        at_threads(4, || {
            let tasks: Vec<usize> = (0..64).collect();
            for_each_task(tasks, Options::default(), |i, v| {
                assert_eq!(i, v);
                hits[v].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn task_panic_returns_typed_error_with_payload() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for t in [1, 4] {
            let result = at_threads(t, || {
                for_each_index(32, Options::default(), |i| {
                    assert!(i != 17, "injected test panic");
                })
            });
            match result {
                Err(ParError::TaskPanicked { payload }) => {
                    assert!(
                        payload.contains("injected test panic"),
                        "threads={t}: payload should carry the panic message: {payload:?}"
                    );
                }
                other => panic!("threads={t}: expected TaskPanicked, got {other:?}"),
            }
            // The pool stays usable after a panicked region.
            let ok = at_threads(t.max(4), || map(32, Options::default(), |i| i).unwrap());
            assert_eq!(ok.len(), 32);
        }
    }

    #[test]
    fn cancellation_fires_mid_region() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        gef_trace::budget::reset();
        for t in [1, 4] {
            // An already-expired hard deadline: the first between-task
            // poll observes it, so the region drains without running
            // (almost) anything and reports Cancelled.
            let ran = AtomicUsize::new(0);
            let result = at_threads(t, || {
                let _budget = gef_trace::budget::scoped(Some(std::time::Duration::ZERO), None);
                for_each_index(64, Options::default(), |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            });
            assert_eq!(result, Err(ParError::Cancelled), "threads={t}");
            assert!(
                ran.load(Ordering::Relaxed) < 64,
                "threads={t}: cancellation must skip remaining tasks"
            );
            // Budget disarmed by the guard: the pool is usable again.
            let ok = at_threads(t, || map(16, Options::default(), |i| i).unwrap());
            assert_eq!(ok.len(), 16);
        }
    }

    #[test]
    fn nested_regions_complete() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let got = at_threads(4, || {
            map(8, Options::default(), |i| {
                map(8, Options::default(), |j| i * 8 + j)
                    .unwrap()
                    .into_iter()
                    .sum::<usize>()
            })
            .unwrap()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn set_threads_clamps() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(usize::MAX);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(1);
    }

    #[test]
    fn empty_workloads_are_no_ops() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        at_threads(4, || {
            assert!(map(0, Options::default(), |i| i).unwrap().is_empty());
            assert_eq!(
                map_reduce(0, Options::default(), |_| 1usize, |a, b| a + b),
                Ok(None)
            );
            for_each_chunk_mut(&mut [] as &mut [u8], Options::default(), |_, _, _| {
                panic!("must not run")
            })
            .unwrap();
        });
    }
}
