//! Property-based tests for the `GFB1` binary codec.
//!
//! Two properties, per the store's trust model:
//!
//! 1. **Round trip is bit-identical** — an arbitrary trained forest
//!    encodes and decodes to a model whose content digest (and every
//!    float's bit pattern) matches the original.
//! 2. **Corruption is typed, never a panic** — every truncation point
//!    and every single-bit flip of a valid artifact decodes to
//!    `Err(CodecError)`. Byte prefixes are built literally in code
//!    (the proptest stub only supports `[class]{lo,hi}` string
//!    patterns), with integer strategies choosing cut and flip
//!    positions.

use gef_forest::codec::{from_binary, to_binary};
use gef_forest::{GbdtParams, GbdtTrainer, Objective};
use proptest::prelude::*;

/// Deterministically train a small forest from a seed (in-code LCG for
/// the data, mirroring `props.rs`).
fn seeded_forest(seed: u64, num_leaves: usize, binary: bool) -> gef_forest::Forest {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..160).map(|_| vec![next(), next(), next()]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let v = x[0] * 2.0 - x[1] + next() * 0.1;
            if binary {
                f64::from(v > 0.8)
            } else {
                v
            }
        })
        .collect();
    GbdtTrainer::new(GbdtParams {
        num_trees: 6,
        num_leaves,
        min_data_in_leaf: 4,
        objective: if binary {
            Objective::BinaryLogistic
        } else {
            Objective::RegressionL2
        },
        seed,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("seeded training data is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_trip_is_bit_identical(
        seed in 0u64..500,
        num_leaves in 2usize..10,
        binary in 0u8..2,
    ) {
        let forest = seeded_forest(seed, num_leaves, binary == 1);
        let bytes = to_binary(&forest);
        let decoded = from_binary(&bytes);
        prop_assert!(decoded.is_ok(), "{:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(forest.content_digest(), decoded.content_digest());
        prop_assert_eq!(forest.base_score.to_bits(), decoded.base_score.to_bits());
        prop_assert_eq!(forest.scale.to_bits(), decoded.scale.to_bits());
        prop_assert_eq!(forest.objective, decoded.objective);
        prop_assert_eq!(forest.num_features, decoded.num_features);
        prop_assert_eq!(&forest.trees, &decoded.trees);
    }

    #[test]
    fn truncated_prefix_is_typed_never_a_panic(
        seed in 0u64..200,
        cut_frac in 0u32..1000,
    ) {
        let bytes = to_binary(&seeded_forest(seed, 6, false));
        // Literal byte prefix built in code; the strategy only picks
        // where to cut.
        let cut = (bytes.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        prop_assert!(cut < bytes.len());
        let decoded = from_binary(&bytes[..cut]);
        prop_assert!(decoded.is_err(), "{cut}-byte prefix decoded");
    }

    #[test]
    fn single_bit_flip_is_typed_never_a_panic(
        seed in 0u64..200,
        pos_frac in 0u32..1000,
        bit in 0u32..8,
    ) {
        let mut bytes = to_binary(&seeded_forest(seed, 6, false));
        let pos = (bytes.len() as u64 * u64::from(pos_frac) / 1000) as usize;
        prop_assert!(pos < bytes.len());
        bytes[pos] ^= 1u8 << bit;
        let decoded = from_binary(&bytes);
        prop_assert!(
            decoded.is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
    }

    #[test]
    fn random_garbage_is_typed_never_a_panic(
        seed in 0u64..u64::MAX,
        len in 0usize..512,
    ) {
        // Arbitrary bytes from an in-code generator; prepend the real
        // magic half the time so the parser gets past the first gate.
        let mut state = seed | 1;
        let mut bytes = Vec::with_capacity(len + 4);
        if seed % 2 == 0 {
            bytes.extend_from_slice(gef_forest::codec::MAGIC);
        }
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.push((state >> 56) as u8);
        }
        let decoded = from_binary(&bytes);
        prop_assert!(decoded.is_err());
    }
}
