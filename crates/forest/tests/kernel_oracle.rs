//! Differential-oracle suite for the flattened branchless kernel.
//!
//! The recursive walker ([`Forest::predict`] / [`Forest::predict_raw`])
//! is the oracle: for every generated forest and batch, the flattened
//! kernel must produce **bit-identical** predictions ([`f64::to_bits`],
//! not a tolerance) at `threads = 1` (serial striped path) and
//! `threads = 4` (gef-par chunked path), including NaN-feature rows
//! (which route right at every split, on both paths) and degenerate
//! single-leaf trees (zero descent iterations).
//!
//! Each test also asserts the kernel path was *actually taken*
//! ([`Forest::layout_cached`]) — a silent fallback to the walker would
//! make the comparison vacuous.

use gef_forest::{Forest, GbdtParams, GbdtTrainer, Node, Objective, Tree};
use proptest::prelude::*;
use std::sync::Mutex;

/// `gef_par::set_threads` is process-global; serialise the tests that
/// touch it and restore serial mode on exit.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_control<T>(f: impl FnOnce() -> T) -> T {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = f();
    gef_par::set_threads(1);
    out
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Walker reference: per-row response-scale predictions (the per-row
/// entry points never dispatch to the kernel).
fn walker_response(forest: &Forest, xs: &[Vec<f64>]) -> Vec<f64> {
    xs.iter().map(|x| forest.predict(x)).collect()
}

/// Random valid binary tree with up to `max_depth` levels on `d`
/// features (same merge construction as `tests/property_based.rs`).
fn arb_tree(d: usize, max_depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = (any::<i16>(), 1u32..50).prop_map(|(v, c)| Tree {
        nodes: vec![Node::leaf(v as f64 / 100.0, c)],
    });
    leaf.prop_recursive(max_depth, 64, 2, move |inner| {
        (inner.clone(), inner, 0..d, any::<i16>(), 0.0f64..10.0).prop_map(
            |(left, right, feature, thr, gain)| {
                let mut nodes = Vec::with_capacity(1 + left.nodes.len() + right.nodes.len());
                let count: u32 = left.nodes[0].count + right.nodes[0].count;
                nodes.push(Node::split(
                    feature,
                    thr as f64 / 100.0,
                    1,
                    1 + left.nodes.len() as u32,
                    gain,
                    count,
                ));
                let off = 1u32;
                for n in &left.nodes {
                    let mut n = *n;
                    if !n.is_leaf() {
                        n.left += off;
                        n.right += off;
                    }
                    nodes.push(n);
                }
                let off = 1 + left.nodes.len() as u32;
                for n in &right.nodes {
                    let mut n = *n;
                    if !n.is_leaf() {
                        n.left += off;
                        n.right += off;
                    }
                    nodes.push(n);
                }
                Tree { nodes }
            },
        )
    })
}

/// A feature value: usually finite, sometimes NaN, with signed zeros
/// and exact-threshold hits in the mix.
fn arb_feature() -> impl Strategy<Value = f64> {
    (0u8..11, -1.5f64..1.5).prop_map(|(sel, v)| match sel {
        0 => f64::NAN,
        1 => 0.0,
        2 => -0.0,
        _ => v,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structured random forests: kernel == walker, bit for bit, at
    /// threads 1 and 4, NaN features included.
    #[test]
    fn kernel_matches_walker_on_random_forests(
        trees in proptest::collection::vec(arb_tree(3, 4), 4..7),
        base in -10i16..10,
        logistic in any::<bool>(),
        rows in proptest::collection::vec(
            proptest::collection::vec(arb_feature(), 3),
            2048..2100,
        ),
    ) {
        let objective = if logistic {
            Objective::BinaryLogistic
        } else {
            Objective::RegressionL2
        };
        let forest = Forest::new(trees, base as f64 / 10.0, 1.0, objective, 3);
        // rows × trees ≥ 2048 × 4 = 8192: clears the kernel work floor.
        let want = walker_response(&forest, &rows);
        with_thread_control(|| -> std::result::Result<(), TestCaseError> {
            for t in [1, 4] {
                gef_par::set_threads(t);
                let got = forest.predict_batch(&rows).expect("no deadline armed");
                prop_assert!(
                    forest.layout_cached(),
                    "kernel path not taken at threads={t}"
                );
                prop_assert_eq!(bits(&got), bits(&want), "threads={}", t);
            }
            Ok(())
        })?;
        // Raw-margin batch path too (infallible entry point).
        let want_raw: Vec<f64> = rows.iter().map(|x| forest.predict_raw(x)).collect();
        prop_assert_eq!(bits(&forest.predict_raw_batch(&rows)), bits(&want_raw));
    }

    /// Degenerate single-leaf trees (zero descent iterations) mixed
    /// with real trees: the kernel must park rows at the root leaf.
    #[test]
    fn kernel_handles_single_leaf_trees(
        leaf_values in proptest::collection::vec(-100i16..100, 120..140),
        scale in 1u8..4,
    ) {
        let trees: Vec<Tree> = leaf_values
            .iter()
            .map(|&v| Tree::constant(v as f64 / 10.0, 1))
            .collect();
        let n_trees = trees.len();
        let forest = Forest::new(trees, 0.25, 1.0 / scale as f64, Objective::RegressionL2, 0);
        // 64 rows × ≥120 trees ≥ 8192 with zero-width feature rows.
        let rows: Vec<Vec<f64>> = vec![vec![]; 70];
        let want = walker_response(&forest, &rows);
        let got = forest.predict_batch(&rows).expect("no deadline armed");
        prop_assert!(forest.layout_cached(), "kernel path not taken ({n_trees} trees)");
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// The counted batch path must reproduce the walker's exact
    /// node-visit totals (the `forest.nodes_visited` telemetry).
    #[test]
    fn counted_kernel_reproduces_walker_visits(
        trees in proptest::collection::vec(arb_tree(2, 5), 4..6),
        rows in proptest::collection::vec(
            proptest::collection::vec(arb_feature(), 2),
            2048..2080,
        ),
    ) {
        let forest = Forest::new(trees, 0.0, 1.0, Objective::RegressionL2, 2);
        let mut want_visits = 0u64;
        let mut want = Vec::with_capacity(rows.len());
        for x in &rows {
            let (raw, n) = forest.predict_raw_counted(x);
            want_visits += n;
            want.push(forest.objective.transform(raw));
        }
        let (got, visits) = forest.predict_batch_counted(&rows).expect("no deadline armed");
        prop_assert!(forest.layout_cached(), "kernel path not taken");
        prop_assert_eq!(bits(&got), bits(&want));
        prop_assert_eq!(visits, want_visits);
    }
}

/// A trained paper-scale forest, big enough that the kernel rides the
/// gef-par pool (`rows × trees ≥ 2^18`): serial and 4-thread kernel
/// outputs and the walker all agree bitwise.
#[test]
fn trained_forest_kernel_is_thread_count_invariant() {
    let mut state = 0xC0FFEEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..2000).map(|_| vec![next(), next(), next()]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] - x[1] * x[2] + 0.1 * next())
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 80,
        num_leaves: 16,
        min_data_in_leaf: 10,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("training succeeds");

    // 4000 rows × 80 trees = 320k ≥ 2^18: pooled kernel at threads=4.
    let batch: Vec<Vec<f64>> = (0..4000)
        .map(|i| {
            if i % 97 == 0 {
                vec![f64::NAN, next(), next()]
            } else {
                vec![next(), next(), next()]
            }
        })
        .collect();
    let want = walker_response(&forest, &batch);
    with_thread_control(|| {
        for t in [1, 4] {
            gef_par::set_threads(t);
            let got = forest.predict_batch(&batch).expect("no deadline armed");
            assert!(
                forest.layout_cached(),
                "kernel path not taken at threads={t}"
            );
            assert_eq!(bits(&got), bits(&want), "threads={t}");
        }
    });
}

/// Trees wider than 32 leaves cannot ride the QuickScorer bitvector
/// path (one `u32` bit per leaf) and take the predicated-descent path
/// instead — which must be just as bit-exact, at both thread counts.
#[test]
fn wide_leaf_trees_take_descent_path_bitwise() {
    // A right-spine chain of 40 splits = 41 leaves > 32: split i sits
    // at index 2i with its left leaf at 2i+1; its right child 2i+2 is
    // the next split (or, after the loop, the final leaf at 80).
    let spine = |shift: f64| {
        let mut nodes = Vec::new();
        for i in 0..40u32 {
            nodes.push(Node::split(
                (i % 3) as usize,
                shift + i as f64 / 40.0,
                2 * i + 1,
                2 * i + 2,
                1.0,
                41 - i,
            ));
            nodes.push(Node::leaf(i as f64 / 10.0 - 2.0, 1));
        }
        nodes.push(Node::leaf(4.0 + shift, 1));
        Tree { nodes }
    };
    let forest = Forest::new(
        vec![spine(0.0), spine(0.1), spine(-0.2)],
        0.5,
        0.75,
        Objective::RegressionL2,
        3,
    );

    let mut state = 0xBEEFu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * 2.0 - 0.5
    };
    // 4000 rows × 3 trees ≥ 8192: clears the kernel work floor.
    let batch: Vec<Vec<f64>> = (0..4000)
        .map(|i| {
            if i % 89 == 0 {
                vec![f64::NAN, next(), next()]
            } else {
                vec![next(), next(), next()]
            }
        })
        .collect();
    let want = walker_response(&forest, &batch);
    with_thread_control(|| {
        for t in [1, 4] {
            gef_par::set_threads(t);
            let got = forest.predict_batch(&batch).expect("no deadline armed");
            assert!(
                forest.layout_cached(),
                "kernel path not taken at threads={t}"
            );
            assert_eq!(bits(&got), bits(&want), "threads={t}");
        }
    });
    // The counted path descends too: walker visit totals must match.
    let mut want_visits = 0u64;
    for x in &batch {
        want_visits += forest.predict_raw_counted(x).1;
    }
    let (_, visits) = forest
        .predict_batch_counted(&batch)
        .expect("no deadline armed");
    assert_eq!(visits, want_visits);
}

/// Repeated batches reuse the cached layout snapshot; an in-place model
/// mutation invalidates it and changes predictions on the next call.
#[test]
fn cached_layout_survives_warm_iterations_and_tracks_mutation() {
    let trees: Vec<Tree> = (0..130).map(|i| Tree::constant(i as f64, 1)).collect();
    let mut forest = Forest::new(trees, 0.0, 1.0, Objective::RegressionL2, 0);
    let rows: Vec<Vec<f64>> = vec![vec![]; 64];

    let first = forest.predict_batch(&rows).expect("no deadline armed");
    assert!(forest.layout_cached());
    for _ in 0..3 {
        let again = forest.predict_batch(&rows).expect("no deadline armed");
        assert_eq!(bits(&again), bits(&first), "warm iteration changed output");
    }

    forest.trees[0].nodes[0].value += 1.0;
    let mutated = forest.predict_batch(&rows).expect("no deadline armed");
    assert_eq!(
        bits(&mutated),
        bits(&walker_response(&forest, &rows)),
        "stale snapshot served after in-place mutation"
    );
    assert_ne!(bits(&mutated), bits(&first));
}

/// Small batches stay on the walker (no layout build at all) — the
/// kernel's fixed costs must not be paid for single-row predicts.
#[test]
fn tiny_batches_stay_on_the_walker() {
    let tree = Tree {
        nodes: vec![
            Node::split(0, 0.5, 1, 2, 1.0, 2),
            Node::leaf(-1.0, 1),
            Node::leaf(1.0, 1),
        ],
    };
    let forest = Forest::new(vec![tree], 0.0, 1.0, Objective::RegressionL2, 1);
    let out = forest
        .predict_batch(&[vec![0.2]])
        .expect("no deadline armed");
    assert_eq!(out, vec![-1.0]);
    assert!(!forest.layout_cached(), "tiny batch built a layout");
}
