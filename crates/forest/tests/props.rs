//! Property-based tests for the forest substrate.

use gef_forest::binning::BinnedDataset;
use gef_forest::io::{from_text, to_text};
use gef_forest::{GbdtParams, GbdtTrainer, Objective, RandomForestParams, RandomForestTrainer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binning_is_order_preserving(
        raw in proptest::collection::vec(-100.0f64..100.0, 10..120),
        max_bins in 2usize..40,
    ) {
        let xs: Vec<Vec<f64>> = raw.iter().map(|&v| vec![v]).collect();
        let b = BinnedDataset::build(&xs, max_bins).unwrap();
        prop_assert!(b.features[0].num_bins() <= max_bins);
        for i in 0..raw.len() {
            for j in 0..raw.len() {
                let (vi, vj) = (raw[i], raw[j]);
                let (bi, bj) = (b.bins[0][i], b.bins[0][j]);
                if vi < vj {
                    prop_assert!(bi <= bj);
                } else if vi == vj {
                    prop_assert_eq!(bi, bj);
                }
            }
        }
    }

    #[test]
    fn gbdt_trees_are_valid_and_predictions_finite(
        seed in 0u64..1000,
        num_leaves in 2usize..12,
        lr in 0.05f64..0.5,
    ) {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..200).map(|_| vec![next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + next() * 0.2).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 10,
            num_leaves,
            learning_rate: lr,
            min_data_in_leaf: 5,
            seed,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for t in &forest.trees {
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
            prop_assert!(t.num_leaves() <= num_leaves);
        }
        for x in xs.iter().take(20) {
            prop_assert!(forest.predict(x).is_finite());
        }
        // Predictions are bounded by base ± total leaf magnitude.
        let text = to_text(&forest);
        let parsed = from_text(&text).unwrap();
        prop_assert_eq!(forest.predict(&xs[0]), parsed.predict(&xs[0]));
    }

    #[test]
    fn truncated_dump_never_parses_or_panics(
        seed in 0u64..200,
        cut_frac in 0.01f64..0.99,
    ) {
        let mut state = seed.wrapping_mul(8).wrapping_add(5);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..120).map(|_| vec![next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - x[1]).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 6,
            num_leaves: 5,
            min_data_in_leaf: 5,
            seed,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let text = to_text(&forest);
        let mut cut = (text.len() as f64 * cut_frac) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        // A truncated dump must either fail to parse or (if the cut
        // landed exactly on a tree-block boundary) be caught by the
        // num_trees cross-check — it must never panic.
        prop_assert!(from_text(&text[..cut]).is_err());
    }

    #[test]
    fn mutated_dump_line_is_rejected_with_location(
        seed in 0u64..100,
        victim_line in 1usize..40,
    ) {
        let mut state = seed.wrapping_mul(16).wrapping_add(9);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..100).map(|_| vec![next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 4,
            num_leaves: 4,
            min_data_in_leaf: 5,
            seed,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let text = to_text(&forest);
        let lines: Vec<&str> = text.lines().collect();
        let victim = victim_line.min(lines.len() - 1);
        let mutated: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == victim {
                    // Replace the value side with garbage, keeping the key.
                    match l.split_once('=') {
                        Some((k, _)) => format!("{k}=@garbage@"),
                        None => "@garbage@".to_string(),
                    }
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = from_text(&mutated).unwrap_err();
        // Errors below the header always name the offending line.
        if victim > 0 && !lines[victim].trim().is_empty() {
            prop_assert!(err.to_string().contains("line "), "{err}");
        }
    }

    #[test]
    fn classification_forest_probabilities_valid(
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(2).wrapping_add(7);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..150).map(|_| vec![next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 8,
            num_leaves: 4,
            min_data_in_leaf: 5,
            objective: Objective::BinaryLogistic,
            seed,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for x in xs.iter().take(30) {
            let p = forest.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn random_forest_prediction_within_label_range(
        seed in 0u64..500,
        max_depth in 1usize..8,
    ) {
        let mut state = seed.wrapping_mul(4).wrapping_add(3);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..120).map(|_| vec![next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|_| next() * 10.0 - 5.0).collect();
        let forest = RandomForestTrainer::new(RandomForestParams {
            num_trees: 10,
            max_depth: Some(max_depth),
            min_samples_leaf: 2,
            seed,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        // RF averages leaf means, so predictions stay inside the label
        // hull.
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for x in xs.iter().take(30) {
            let p = forest.predict(x);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }
}
