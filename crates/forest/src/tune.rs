//! Hyper-parameter grid search with k-fold cross-validation.
//!
//! The paper tunes its LightGBM forests over a grid of
//! `{num_trees} × {num_leaves} × {learning_rate}` with 5-fold CV and a
//! 25% validation split for early stopping; [`grid_search_cv`]
//! reproduces that procedure for our GBDT trainer.

use crate::{sigmoid, Forest, ForestError, GbdtParams, GbdtTrainer, Objective, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One point of the tuning grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Candidate number of trees.
    pub num_trees: usize,
    /// Candidate number of leaves.
    pub num_leaves: usize,
    /// Candidate learning rate.
    pub learning_rate: f64,
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best grid point by mean CV loss.
    pub best: GridPoint,
    /// Mean CV loss of the best point.
    pub best_loss: f64,
    /// Every evaluated `(point, mean_loss)` pair, in evaluation order.
    pub all: Vec<(GridPoint, f64)>,
}

/// The paper's tuning grid for the synthetic datasets (Sec. 4.1):
/// trees ∈ {10, 100, 1000}, leaves ∈ {32, 64, 127, 256},
/// lr ∈ {1e-4, 1e-3, 1e-2, 1e-1}.
pub fn paper_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for &num_trees in &[10usize, 100, 1000] {
        for &num_leaves in &[32usize, 64, 127, 256] {
            for &learning_rate in &[1e-4, 1e-3, 1e-2, 1e-1] {
                grid.push(GridPoint {
                    num_trees,
                    num_leaves,
                    learning_rate,
                });
            }
        }
    }
    grid
}

/// k-fold cross-validated grid search.
///
/// For each grid point, the data is split into `k` folds (shuffled with
/// `seed`); each fold serves once as the held-out set while a forest is
/// trained on the remainder (with 25% of the training part used for
/// early stopping when `base.early_stopping_rounds` is set). The loss
/// is MSE for regression and log-loss for classification, averaged over
/// folds.
pub fn grid_search_cv(
    base: &GbdtParams,
    grid: &[GridPoint],
    xs: &[Vec<f64>],
    ys: &[f64],
    k: usize,
    seed: u64,
) -> Result<TuneResult> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(!grid.is_empty(), "empty grid");
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let fold_of: Vec<usize> = {
        let mut f = vec![0usize; n];
        for (rank, &i) in order.iter().enumerate() {
            f[i] = rank % k;
        }
        f
    };

    let mut all = Vec::with_capacity(grid.len());
    for &point in grid {
        let mut params = base.clone();
        params.num_trees = point.num_trees;
        params.num_leaves = point.num_leaves;
        params.learning_rate = point.learning_rate;
        let mut fold_losses = Vec::with_capacity(k);
        for fold in 0..k {
            let mut train_x = Vec::new();
            let mut train_y = Vec::new();
            let mut test_x = Vec::new();
            let mut test_y = Vec::new();
            for i in 0..n {
                if fold_of[i] == fold {
                    test_x.push(xs[i].clone());
                    test_y.push(ys[i]);
                } else {
                    train_x.push(xs[i].clone());
                    train_y.push(ys[i]);
                }
            }
            let forest = if params.early_stopping_rounds.is_some() {
                // Carve a 25% early-stopping split out of the training part.
                let cut = train_x.len() * 3 / 4;
                let (fx, vx) = train_x.split_at(cut);
                let (fy, vy) = train_y.split_at(cut);
                GbdtTrainer::new(params.clone()).fit_with_valid(fx, fy, vx, vy)?
            } else {
                GbdtTrainer::new(params.clone()).fit(&train_x, &train_y)?
            };
            fold_losses.push(holdout_loss(&forest, &test_x, &test_y));
        }
        let mean = fold_losses.iter().sum::<f64>() / k as f64;
        all.push((point, mean));
    }
    let (best, best_loss) = all
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or_else(|| ForestError::InvalidParams("empty tuning grid".into()))?;
    Ok(TuneResult {
        best,
        best_loss,
        all,
    })
}

/// MSE (regression) or log-loss (classification) on a held-out set.
fn holdout_loss(forest: &Forest, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    match forest.objective {
        Objective::RegressionL2 => {
            xs.iter()
                .zip(ys)
                .map(|(x, y)| {
                    let d = forest.predict(x) - y;
                    d * d
                })
                .sum::<f64>()
                / xs.len() as f64
        }
        Objective::BinaryLogistic => {
            xs.iter()
                .zip(ys)
                .map(|(x, &y)| {
                    let p = sigmoid(forest.predict_raw(x)).clamp(1e-12, 1.0 - 1e-12);
                    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / xs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_48_points() {
        assert_eq!(paper_grid().len(), 3 * 4 * 4);
    }

    #[test]
    fn picks_obviously_better_config() {
        // Data a 1-tree/lr=1e-4 model cannot fit but a real config can.
        let xs: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 10.0).sin()).collect();
        let grid = vec![
            GridPoint {
                num_trees: 1,
                num_leaves: 2,
                learning_rate: 1e-4,
            },
            GridPoint {
                num_trees: 80,
                num_leaves: 16,
                learning_rate: 0.2,
            },
        ];
        let base = GbdtParams {
            min_data_in_leaf: 5,
            ..Default::default()
        };
        let r = grid_search_cv(&base, &grid, &xs, &ys, 3, 7).unwrap();
        assert_eq!(r.best.num_trees, 80);
        assert_eq!(r.all.len(), 2);
        assert!(r.best_loss < r.all[0].1);
    }

    #[test]
    fn cv_uses_every_point_once_per_fold() {
        // Smoke test: k=5 on tiny data runs and returns finite losses.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let grid = vec![GridPoint {
            num_trees: 5,
            num_leaves: 4,
            learning_rate: 0.3,
        }];
        let base = GbdtParams {
            min_data_in_leaf: 2,
            ..Default::default()
        };
        let r = grid_search_cv(&base, &grid, &xs, &ys, 5, 1).unwrap();
        assert!(r.best_loss.is_finite());
    }
}
