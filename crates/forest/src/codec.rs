//! `GFB1`: a compact, checksummed binary forest format.
//!
//! The text format ([`crate::io`]) is the interchange point — greppable,
//! diffable, importable from LightGBM dumps. This module is the *cold
//! load* format: the same model as raw little-endian bytes, framed so
//! that torn writes, truncation, and bit flips are **detected before a
//! single node is trusted**. The `gef-store` artifact store writes both
//! and treats this one as primary, falling back to the text format when
//! a binary artifact fails verification.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header   magic "GEFB" · version u32 (=1) · section_count u32│
//! ├────────────────────────────────────────────────────────────┤
//! │ section  tag [4B] · payload_len u64 · payload · fnv1a u64  │  × section_count
//! │   "META" objective u8 · num_features u64                   │
//! │          base_score f64 · scale f64 · num_trees u64        │
//! │   "TREE" num_nodes u64 · nodes (40 B each: feature i32,    │
//! │          threshold f64, left u32, right u32, value f64,    │
//! │          gain f64, count u32)                              │
//! ├────────────────────────────────────────────────────────────┤
//! │ trailer  magic "BFEG" · fnv1a u64 over every prior byte    │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Exactly one `META` section (first), then one `TREE` section per
//! tree. Floats are stored by their IEEE-754 bit patterns, so a round
//! trip is **bit-identical** — `Forest::content_digest` of the decoded
//! model always equals the original's.
//!
//! # Error discipline
//!
//! [`from_binary`] never panics and never returns a partially-decoded
//! model: every read is bounds-checked ([`CodecError::Truncated`]),
//! every section's checksum is verified before its payload is parsed,
//! the whole-file trailer checksum catches flips in the framing itself,
//! and the decoded forest passes the same structural validation as the
//! text parser. Any single-bit flip anywhere in the byte string yields
//! a typed [`CodecError`].

use crate::tree::{Node, Tree};
use crate::{Forest, Objective};
use gef_trace::hash::fnv1a_bytes;

/// Header magic, first four bytes of every binary model.
pub const MAGIC: &[u8; 4] = b"GEFB";
/// Trailer magic (header magic reversed), guarding the final checksum.
pub const TRAILER_MAGIC: &[u8; 4] = b"BFEG";
/// Current format version.
pub const VERSION: u32 = 1;

const TAG_META: &[u8; 4] = b"META";
const TAG_TREE: &[u8; 4] = b"TREE";
/// Bytes per serialized node (i32 + f64 + u32 + u32 + f64 + f64 + u32).
const NODE_BYTES: usize = 40;

/// Typed decode failure of a binary model artifact. Every variant means
/// "do not trust these bytes" — the `gef-store` loader quarantines the
/// artifact and falls back to the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte string ends before a required field.
    Truncated {
        /// Offset at which the read was attempted.
        at: usize,
        /// Bytes the field needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The header version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// A section's payload does not match its stored FNV checksum.
    SectionChecksum {
        /// 0-based section index.
        index: usize,
    },
    /// The trailer checksum over the whole body does not match.
    FileChecksum,
    /// Framing or content is structurally wrong (bad tag order, tree
    /// count mismatch, invalid node topology, trailing bytes…).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at, need, have } => {
                write!(f, "truncated at byte {at}: need {need} more, have {have}")
            }
            CodecError::BadMagic => write!(f, "not a GEFB binary model (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported GEFB version {v} (supported: {VERSION})")
            }
            CodecError::SectionChecksum { index } => {
                write!(f, "section {index} checksum mismatch (corrupt payload)")
            }
            CodecError::FileChecksum => write!(f, "file trailer checksum mismatch"),
            CodecError::Malformed(m) => write!(f, "malformed binary model: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for crate::ForestError {
    fn from(e: CodecError) -> Self {
        crate::ForestError::Parse(format!("binary codec: {e}"))
    }
}

fn objective_code(o: Objective) -> u8 {
    match o {
        Objective::RegressionL2 => 0,
        Objective::BinaryLogistic => 1,
    }
}

fn push_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
}

/// Serialize a forest to the `GFB1` binary format.
///
/// Infallible: the format can represent every in-memory forest,
/// including non-finite leaf values and thresholds (validation is the
/// *decoder's* job, mirroring the text format's trust model).
pub fn to_binary(forest: &Forest) -> Vec<u8> {
    // Meta payload.
    let mut meta = Vec::with_capacity(33);
    meta.push(objective_code(forest.objective));
    meta.extend_from_slice(&(forest.num_features as u64).to_le_bytes());
    meta.extend_from_slice(&forest.base_score.to_bits().to_le_bytes());
    meta.extend_from_slice(&forest.scale.to_bits().to_le_bytes());
    meta.extend_from_slice(&(forest.trees.len() as u64).to_le_bytes());

    let node_total: usize = forest.trees.iter().map(|t| t.nodes.len()).sum();
    let mut out = Vec::with_capacity(64 + meta.len() + node_total * NODE_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(1 + forest.trees.len() as u32).to_le_bytes());
    push_section(&mut out, TAG_META, &meta);

    let mut payload = Vec::new();
    for tree in &forest.trees {
        payload.clear();
        payload.reserve(8 + tree.nodes.len() * NODE_BYTES);
        payload.extend_from_slice(&(tree.nodes.len() as u64).to_le_bytes());
        for n in &tree.nodes {
            payload.extend_from_slice(&n.feature.to_le_bytes());
            payload.extend_from_slice(&n.threshold.to_bits().to_le_bytes());
            payload.extend_from_slice(&n.left.to_le_bytes());
            payload.extend_from_slice(&n.right.to_le_bytes());
            payload.extend_from_slice(&n.value.to_bits().to_le_bytes());
            payload.extend_from_slice(&n.gain.to_bits().to_le_bytes());
            payload.extend_from_slice(&n.count.to_le_bytes());
        }
        push_section(&mut out, TAG_TREE, &payload);
    }

    let body_sum = fnv1a_bytes(&out);
    out.extend_from_slice(TRAILER_MAGIC);
    out.extend_from_slice(&body_sum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over the raw bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.bytes.len().saturating_sub(self.pos);
        if have < n {
            return Err(CodecError::Truncated {
                at: self.pos,
                need: n,
                have,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        // take(4) returned exactly 4 bytes; the conversion cannot fail.
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.u32()? as i32)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Deserialize a forest from [`to_binary`] bytes, verifying every
/// checksum and the decoded structure. Never panics; any corruption —
/// truncation, a flipped bit, reordered sections, trailing garbage —
/// yields a typed [`CodecError`].
pub fn from_binary(bytes: &[u8]) -> Result<Forest, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let section_count = r.u32()? as usize;
    if section_count == 0 {
        return Err(CodecError::Malformed("zero sections".into()));
    }
    // Cheap plausibility bound: each section needs ≥ 20 framing bytes,
    // so a flipped count field fails here instead of looping on a
    // multi-gigabyte allocation attempt.
    if section_count > bytes.len() / 20 {
        return Err(CodecError::Malformed(format!(
            "section count {section_count} impossible for a {}-byte artifact",
            bytes.len()
        )));
    }

    let mut meta: Option<(Objective, usize, f64, f64, usize)> = None;
    let mut trees: Vec<Tree> = Vec::new();
    for index in 0..section_count {
        let tag: [u8; 4] = {
            let t = r.take(4)?;
            [t[0], t[1], t[2], t[3]]
        };
        let len = r.u64()? as usize;
        let start = r.pos;
        let payload = r.take(len)?;
        let stored = r.u64()?;
        if fnv1a_bytes(payload) != stored {
            return Err(CodecError::SectionChecksum { index });
        }
        let mut pr = Reader {
            bytes: payload,
            pos: 0,
        };
        match &tag {
            t if t == TAG_META => {
                if index != 0 {
                    return Err(CodecError::Malformed(format!(
                        "META section at index {index} (must be first)"
                    )));
                }
                let objective = match pr.take(1)?[0] {
                    0 => Objective::RegressionL2,
                    1 => Objective::BinaryLogistic,
                    other => {
                        return Err(CodecError::Malformed(format!(
                            "unknown objective code {other}"
                        )))
                    }
                };
                let num_features = pr.u64()? as usize;
                let base_score = pr.f64()?;
                let scale = pr.f64()?;
                let num_trees = pr.u64()? as usize;
                if pr.pos != payload.len() {
                    return Err(CodecError::Malformed(
                        "META payload has trailing bytes".into(),
                    ));
                }
                if num_trees != section_count - 1 {
                    return Err(CodecError::Malformed(format!(
                        "META claims {num_trees} trees but {} TREE sections follow",
                        section_count - 1
                    )));
                }
                meta = Some((objective, num_features, base_score, scale, num_trees));
                trees.reserve(num_trees);
            }
            t if t == TAG_TREE => {
                if meta.is_none() {
                    return Err(CodecError::Malformed("TREE section before META".into()));
                }
                let num_nodes = pr.u64()?;
                // Checked: a crafted count near u64::MAX must fail as
                // Malformed, not wrap past the length check (and then
                // abort in Vec::with_capacity) in release builds.
                let expected = usize::try_from(num_nodes)
                    .ok()
                    .and_then(|n| n.checked_mul(NODE_BYTES))
                    .and_then(|b| b.checked_add(8));
                if expected != Some(payload.len()) {
                    return Err(CodecError::Malformed(format!(
                        "TREE section {index}: {num_nodes} nodes do not fit {} payload bytes",
                        payload.len()
                    )));
                }
                let num_nodes = num_nodes as usize;
                let mut nodes = Vec::with_capacity(num_nodes);
                for _ in 0..num_nodes {
                    nodes.push(Node {
                        feature: pr.i32()?,
                        threshold: pr.f64()?,
                        left: pr.u32()?,
                        right: pr.u32()?,
                        value: pr.f64()?,
                        gain: pr.f64()?,
                        count: pr.u32()?,
                    });
                }
                trees.push(Tree { nodes });
            }
            other => {
                return Err(CodecError::Malformed(format!(
                    "unknown section tag {:?} at byte {start}",
                    String::from_utf8_lossy(other)
                )))
            }
        }
    }

    // Trailer: magic + whole-body checksum, then nothing.
    let body_end = r.pos;
    if r.take(4)? != TRAILER_MAGIC {
        return Err(CodecError::Malformed("bad trailer magic".into()));
    }
    let stored = r.u64()?;
    if fnv1a_bytes(&bytes[..body_end]) != stored {
        return Err(CodecError::FileChecksum);
    }
    if r.pos != bytes.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing byte(s) after the trailer",
            bytes.len() - r.pos
        )));
    }

    // meta is always Some here: section 0 must be META (a TREE at index
    // 0 fails "TREE section before META", an unknown tag fails too).
    let Some((objective, num_features, base_score, scale, _)) = meta else {
        return Err(CodecError::Malformed("missing META section".into()));
    };
    let forest = Forest::new(trees, base_score, scale, objective, num_features);
    crate::io::validate(&forest)
        .map_err(|e| CodecError::Malformed(format!("structural validation: {e}")))?;
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbdtParams, GbdtTrainer};

    fn small_forest() -> Forest {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64 / 17.0, (i % 7) as f64 / 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 8,
            num_leaves: 6,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let f = small_forest();
        let bytes = to_binary(&f);
        let g = from_binary(&bytes).unwrap();
        assert_eq!(f.trees, g.trees);
        assert_eq!(f.base_score.to_bits(), g.base_score.to_bits());
        assert_eq!(f.scale.to_bits(), g.scale.to_bits());
        assert_eq!(f.objective, g.objective);
        assert_eq!(f.num_features, g.num_features);
        assert_eq!(f.content_digest(), g.content_digest());
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = to_binary(&small_forest());
        for cut in 0..bytes.len() {
            assert!(
                from_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = to_binary(&small_forest());
        // Exhaustive over a small model would be slow in debug builds;
        // stride through the artifact hitting header, sections,
        // checksums, and trailer.
        let stride = (bytes.len() / 97).max(1);
        for i in (0..bytes.len()).step_by(stride) {
            for bit in [0u8, 3, 7] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    from_binary(&corrupt).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_binary(&small_forest());
        bytes.push(0);
        assert!(matches!(from_binary(&bytes), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let bytes = to_binary(&small_forest());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(from_binary(&bad).err(), Some(CodecError::BadMagic));
        let mut vbad = bytes;
        vbad[4] = 9; // version 9
        assert_eq!(
            from_binary(&vbad).err(),
            Some(CodecError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn empty_and_tiny_inputs_are_typed() {
        assert!(from_binary(&[]).is_err());
        assert!(from_binary(b"GEFB").is_err());
        assert!(from_binary(b"GEFB\x01\x00\x00\x00").is_err());
    }

    #[test]
    fn huge_node_count_is_malformed_not_a_panic() {
        // Crafted artifacts with *valid* checksums whose TREE section
        // claims an absurd node count. (1 << 61) + 1 is the nasty one:
        // 8 + n * NODE_BYTES wraps mod 2^64 back to the actual payload
        // length, so unchecked arithmetic passes the length check and
        // reaches Vec::with_capacity(2^61 + 1).
        for claim in [u64::MAX, (1u64 << 61) + 1] {
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.extend_from_slice(&VERSION.to_le_bytes());
            out.extend_from_slice(&2u32.to_le_bytes());
            let mut meta = Vec::new();
            meta.push(0u8); // RegressionL2
            meta.extend_from_slice(&1u64.to_le_bytes()); // num_features
            meta.extend_from_slice(&0f64.to_bits().to_le_bytes());
            meta.extend_from_slice(&1f64.to_bits().to_le_bytes());
            meta.extend_from_slice(&1u64.to_le_bytes()); // num_trees
            push_section(&mut out, TAG_META, &meta);
            let mut tree = Vec::new();
            tree.extend_from_slice(&claim.to_le_bytes());
            tree.extend_from_slice(&[0u8; NODE_BYTES]); // one node of bytes
            push_section(&mut out, TAG_TREE, &tree);
            let sum = fnv1a_bytes(&out);
            out.extend_from_slice(TRAILER_MAGIC);
            out.extend_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(from_binary(&out), Err(CodecError::Malformed(_))),
                "claim {claim}"
            );
        }
    }

    #[test]
    fn non_finite_leaf_values_survive_round_trip() {
        // The codec is transport, not policy: a hostile model with NaN
        // leaves round-trips bit-exactly (prediction-time scrubbing is
        // the pipeline's job, as with the text format).
        let mut f = small_forest();
        for n in &mut f.trees[0].nodes {
            if n.is_leaf() {
                n.value = f64::NAN;
                break;
            }
        }
        let g = from_binary(&to_binary(&f)).unwrap();
        assert_eq!(f.content_digest(), g.content_digest());
    }
}
