//! Random Forest trainer (Breiman 2001).
//!
//! The GEF paper's future work proposes applying GEF to Random Forests,
//! since the framework makes no assumption on how the forest was
//! trained; this module provides that substrate. Unlike the histogram
//! GBDT, trees here are grown depth-first with **exact** (sort-based)
//! variance-reduction splits and per-node feature subsampling (`mtry`),
//! on bootstrap resamples of the training data. Predictions average the
//! member trees (`Forest::scale = 1/T`).
//!
//! For binary classification the trees regress on the 0/1 labels, so the
//! averaged prediction is the class-1 probability — equivalent to
//! probability voting.

use crate::tree::{Node, Tree};
use crate::{Forest, ForestError, Objective, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the Random Forest trainer.
#[derive(Debug, Clone)]
pub struct RandomForestParams {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum instances required in each child of a split.
    pub min_samples_leaf: usize,
    /// Features sampled per split; `None` = ceil(sqrt(d)) (Breiman's
    /// default for classification, also a solid regression default).
    pub mtry: Option<usize>,
    /// Draw bootstrap resamples (with replacement) per tree.
    pub bootstrap: bool,
    /// Task; only affects [`Forest::predict`]'s output scale semantics.
    pub objective: Objective,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            num_trees: 100,
            max_depth: None,
            min_samples_leaf: 5,
            mtry: None,
            bootstrap: true,
            objective: Objective::RegressionL2,
            seed: 0,
        }
    }
}

/// Random Forest trainer.
#[derive(Debug, Clone)]
pub struct RandomForestTrainer {
    params: RandomForestParams,
}

impl RandomForestTrainer {
    /// Create a trainer with the given hyper-parameters.
    pub fn new(params: RandomForestParams) -> Self {
        RandomForestTrainer { params }
    }

    /// Fit a forest on the given data.
    pub fn fit(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Forest> {
        if xs.is_empty() {
            return Err(ForestError::InvalidData("empty training set".into()));
        }
        if xs.len() != ys.len() {
            return Err(ForestError::InvalidData(format!(
                "{} rows but {} labels",
                xs.len(),
                ys.len()
            )));
        }
        let d = xs[0].len();
        if d == 0 {
            return Err(ForestError::InvalidData("no features".into()));
        }
        if self.params.num_trees == 0 {
            return Err(ForestError::InvalidParams("num_trees must be >= 1".into()));
        }
        if self.params.min_samples_leaf == 0 {
            return Err(ForestError::InvalidParams(
                "min_samples_leaf must be >= 1".into(),
            ));
        }
        let mtry = self
            .params
            .mtry
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d);
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = xs.len();
        let mut trees = Vec::with_capacity(self.params.num_trees);
        for _ in 0..self.params.num_trees {
            let indices: Vec<u32> = if self.params.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n as u32)).collect()
            } else {
                (0..n as u32).collect()
            };
            let mut builder = TreeBuilder {
                xs,
                ys,
                params: &self.params,
                mtry,
                rng: &mut rng,
                nodes: Vec::new(),
                feat_pool: (0..d).collect(),
            };
            builder.build(indices, 0);
            trees.push(Tree {
                nodes: builder.nodes,
            });
        }
        let scale = 1.0 / trees.len() as f64;
        Ok(Forest::new(trees, 0.0, scale, self.params.objective, d))
    }
}

struct TreeBuilder<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [f64],
    params: &'a RandomForestParams,
    mtry: usize,
    rng: &'a mut StdRng,
    nodes: Vec<Node>,
    feat_pool: Vec<usize>,
}

struct ExactSplit {
    feature: usize,
    threshold: f64,
    sse_reduction: f64,
}

impl TreeBuilder<'_> {
    /// Recursively build a subtree over `indices`; returns node index.
    fn build(&mut self, indices: Vec<u32>, depth: usize) -> usize {
        let n = indices.len();
        let sum: f64 = indices.iter().map(|&i| self.ys[i as usize]).sum();
        let mean = sum / n as f64;
        let at_depth_limit = self.params.max_depth.is_some_and(|d| depth >= d);
        if n < 2 * self.params.min_samples_leaf || at_depth_limit {
            return self.push_leaf(mean, n);
        }
        let Some(split) = self.best_split(&indices) else {
            return self.push_leaf(mean, n);
        };
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .iter()
            .partition(|&&i| self.xs[i as usize][split.feature] <= split.threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
        // Reserve this node's slot before recursing so the root stays at 0.
        let me = self.nodes.len();
        self.nodes.push(Node::leaf(0.0, n as u32));
        let l = self.build(left_idx, depth + 1);
        let r = self.build(right_idx, depth + 1);
        self.nodes[me] = Node::split(
            split.feature,
            split.threshold,
            l as u32,
            r as u32,
            split.sse_reduction,
            n as u32,
        );
        self.nodes[me].count = n as u32;
        me
    }

    fn push_leaf(&mut self, value: f64, count: usize) -> usize {
        self.nodes.push(Node::leaf(value, count as u32));
        self.nodes.len() - 1
    }

    /// Exact variance-reduction split over `mtry` sampled features.
    fn best_split(&mut self, indices: &[u32]) -> Option<ExactSplit> {
        let min_leaf = self.params.min_samples_leaf;
        let n = indices.len();
        let total: f64 = indices.iter().map(|&i| self.ys[i as usize]).sum();
        // SSE(parent) - [SSE(L) + SSE(R)] = sumL²/nL + sumR²/nR - total²/n
        let parent_score = total * total / n as f64;
        self.feat_pool.shuffle(self.rng);
        let feats: Vec<usize> = self.feat_pool[..self.mtry].to_vec();
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
        let mut best: Option<ExactSplit> = None;
        for f in feats {
            pairs.clear();
            pairs.extend(
                indices
                    .iter()
                    .map(|&i| (self.xs[i as usize][f], self.ys[i as usize])),
            );
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut sum_l = 0.0;
            for k in 0..n - 1 {
                sum_l += pairs[k].1;
                // Can't split between equal feature values.
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let nl = k + 1;
                let nr = n - nl;
                if nl < min_leaf {
                    continue;
                }
                if nr < min_leaf {
                    break;
                }
                let sum_r = total - sum_l;
                let red = sum_l * sum_l / nl as f64 + sum_r * sum_r / nr as f64 - parent_score;
                if red > 1e-12 && best.as_ref().is_none_or(|b| red > b.sse_reduction) {
                    best = Some(ExactSplit {
                        feature: f,
                        threshold: 0.5 * (pairs[k].0 + pairs[k + 1].0),
                        sse_reduction: red,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, f: impl Fn(&[f64]) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next(), next()]).collect();
        let ys = xs.iter().map(|x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn learns_smooth_function() {
        let (xs, ys) = data(600, |x| x[0] * 2.0 + (x[1] * 3.0).sin());
        let f = RandomForestTrainer::new(RandomForestParams {
            num_trees: 50,
            min_samples_leaf: 3,
            seed: 1,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let rmse: f64 = (xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (f.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        assert!(rmse < 0.25, "rmse={rmse}");
    }

    #[test]
    fn averaging_scale_is_inverse_tree_count() {
        let (xs, ys) = data(200, |x| x[0]);
        let f = RandomForestTrainer::new(RandomForestParams {
            num_trees: 7,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        assert_eq!(f.trees.len(), 7);
        assert!((f.scale - 1.0 / 7.0).abs() < 1e-15);
        assert_eq!(f.base_score, 0.0);
    }

    #[test]
    fn trees_are_structurally_valid() {
        let (xs, ys) = data(300, |x| if x[0] > 0.5 { x[1] } else { -x[2] });
        let f = RandomForestTrainer::new(RandomForestParams {
            num_trees: 10,
            max_depth: Some(6),
            seed: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for t in &f.trees {
            t.validate().expect("valid rf tree");
            assert!(t.depth() <= 6);
        }
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (xs, ys) = data(200, |x| if x[0] > 0.5 { 1.0 } else { 0.0 });
        let f = RandomForestTrainer::new(RandomForestParams {
            num_trees: 3,
            max_depth: Some(1),
            mtry: Some(3),
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for t in &f.trees {
            assert!(t.num_leaves() <= 2);
        }
    }

    #[test]
    fn no_bootstrap_with_full_mtry_is_deterministic_tree() {
        let (xs, ys) = data(150, |x| x[0] + x[1]);
        let p = RandomForestParams {
            num_trees: 2,
            bootstrap: false,
            mtry: Some(3),
            seed: 42,
            ..Default::default()
        };
        let f = RandomForestTrainer::new(p).fit(&xs, &ys).unwrap();
        // Without bootstrap and with all features considered, both trees
        // are grown on identical data and must agree everywhere.
        let a = &f.trees[0];
        let b = &f.trees[1];
        for x in xs.iter().take(20) {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn classification_probability_in_unit_interval() {
        let (xs, ys) = data(400, |x| if x[0] + x[1] > 1.0 { 1.0 } else { 0.0 });
        let f = RandomForestTrainer::new(RandomForestParams {
            num_trees: 30,
            objective: Objective::RegressionL2, // probability averaging
            seed: 2,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for x in xs.iter().take(50) {
            let p = f.predict(x);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
        assert!(f.predict(&[0.95, 0.95, 0.5]) > 0.8);
        assert!(f.predict(&[0.05, 0.05, 0.5]) < 0.2);
    }

    #[test]
    fn rejects_invalid() {
        let t = RandomForestTrainer::new(RandomForestParams::default());
        assert!(t.fit(&[], &[]).is_err());
        assert!(t.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        let bad = RandomForestTrainer::new(RandomForestParams {
            num_trees: 0,
            ..Default::default()
        });
        assert!(bad.fit(&[vec![1.0]], &[1.0]).is_err());
    }
}
