//! Flattened binary decision tree.
//!
//! Nodes live in one contiguous `Vec`; index 0 is the root. Internal
//! nodes test `x[feature] <= threshold` (LightGBM's default predicate,
//! and the one assumed throughout the GEF paper): on success traversal
//! goes left, otherwise right. Every node records the training-time
//! loss reduction (`gain`) and the number of training rows that reached
//! it (`count`) — the two statistics GEF's feature-selection and
//! interaction heuristics consume, and TreeSHAP's cover weights.

use serde::{Deserialize, Serialize};

/// Sentinel feature index marking a leaf node.
pub const LEAF: i32 = -1;

/// One node of a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Feature index tested at this node, or [`LEAF`] for leaves.
    pub feature: i32,
    /// Split threshold; traversal goes left when `x[feature] <= threshold`.
    pub threshold: f64,
    /// Index of the left child (`x <= t`). Unused for leaves.
    pub left: u32,
    /// Index of the right child (`x > t`). Unused for leaves.
    pub right: u32,
    /// Output value (meaningful only for leaves).
    pub value: f64,
    /// Loss reduction achieved by this split at training time
    /// (0 for leaves).
    pub gain: f64,
    /// Number of training instances routed through this node ("cover").
    pub count: u32,
}

impl Node {
    /// Construct a leaf node.
    pub fn leaf(value: f64, count: u32) -> Self {
        Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            value,
            gain: 0.0,
            count,
        }
    }

    /// Construct an internal split node.
    pub fn split(
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
        gain: f64,
        count: u32,
    ) -> Self {
        Node {
            feature: feature as i32,
            threshold,
            left,
            right,
            value: 0.0,
            gain,
            count,
        }
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.feature == LEAF
    }
}

/// A binary decision tree stored as a flat node array (root at index 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Flattened nodes; index 0 is the root.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// A tree consisting of a single leaf (constant prediction).
    pub fn constant(value: f64, count: u32) -> Self {
        Tree {
            nodes: vec![Node::leaf(value, count)],
        }
    }

    /// Evaluate the tree on an instance.
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.is_leaf() {
                return n.value;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Evaluate the tree and also report how many nodes the traversal
    /// visited (root and leaf included). Used by telemetry to count
    /// forest work during synthetic-dataset labeling.
    #[inline]
    pub fn predict_counted(&self, x: &[f64]) -> (f64, u64) {
        let mut idx = 0usize;
        let mut visited = 0u64;
        loop {
            let n = &self.nodes[idx];
            visited += 1;
            if n.is_leaf() {
                return (n.value, visited);
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Index of the leaf an instance falls into.
    pub fn leaf_index(&self, x: &[f64]) -> usize {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.is_leaf() {
                return idx;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Node indices along the root-to-leaf decision path of an instance
    /// (includes both the root and the final leaf).
    pub fn decision_path(&self, x: &[f64]) -> Vec<usize> {
        let mut path = Vec::with_capacity(16);
        let mut idx = 0usize;
        loop {
            path.push(idx);
            let n = &self.nodes[idx];
            if n.is_leaf() {
                return path;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(t: &Tree, idx: usize) -> usize {
            let n = &t.nodes[idx];
            if n.is_leaf() {
                0
            } else {
                1 + rec(t, n.left as usize).max(rec(t, n.right as usize))
            }
        }
        rec(self, 0)
    }

    /// Iterate over internal (split) node indices.
    pub fn internal_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_leaf())
            .map(|(i, _)| i)
    }

    /// Validate structural invariants: child indices in range, every
    /// non-root node referenced exactly once, no cycles (indices of
    /// children strictly greater than the parent is NOT required, only
    /// reachability-consistency), and counts consistent
    /// (`parent.count == left.count + right.count` when counts are set).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        if n == 0 {
            return Err("empty tree".into());
        }
        let mut refs = vec![0u32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_leaf() {
                continue;
            }
            let (l, r) = (node.left as usize, node.right as usize);
            if l >= n || r >= n {
                return Err(format!("node {i}: child index out of range"));
            }
            if l == i || r == i {
                return Err(format!("node {i}: self-referencing child"));
            }
            refs[l] += 1;
            refs[r] += 1;
            if node.count > 0
                && self.nodes[l].count > 0
                && self.nodes[r].count > 0
                && node.count != self.nodes[l].count + self.nodes[r].count
            {
                return Err(format!(
                    "node {i}: count {} != children {} + {}",
                    node.count, self.nodes[l].count, self.nodes[r].count
                ));
            }
        }
        if refs[0] != 0 {
            return Err("root is referenced as a child".into());
        }
        for (i, &c) in refs.iter().enumerate().skip(1) {
            if c != 1 {
                return Err(format!("node {i} referenced {c} times (expected 1)"));
            }
        }
        // Reachability: every node must be visited exactly once from root.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        let mut visited = 0usize;
        while let Some(i) = stack.pop() {
            if seen[i] {
                return Err(format!("cycle detected at node {i}"));
            }
            seen[i] = true;
            visited += 1;
            let node = &self.nodes[i];
            if !node.is_leaf() {
                stack.push(node.left as usize);
                stack.push(node.right as usize);
            }
        }
        if visited != n {
            return Err(format!("{} unreachable nodes", n - visited));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree:      [0] x0 <= 0.5
    ///            /            \
    ///      [1] x1 <= 0.3    [2] leaf 3.0
    ///        /      \
    ///  [3] leaf 1.0  [4] leaf 2.0
    fn sample_tree() -> Tree {
        Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 5.0, 100),
                Node::split(1, 0.3, 3, 4, 2.0, 60),
                Node::leaf(3.0, 40),
                Node::leaf(1.0, 25),
                Node::leaf(2.0, 35),
            ],
        }
    }

    #[test]
    fn predict_routes_correctly() {
        let t = sample_tree();
        assert_eq!(t.predict(&[0.4, 0.2]), 1.0);
        assert_eq!(t.predict(&[0.4, 0.8]), 2.0);
        assert_eq!(t.predict(&[0.9, 0.0]), 3.0);
        // Boundary: x <= t goes left.
        assert_eq!(t.predict(&[0.5, 0.3]), 1.0);
    }

    #[test]
    fn decision_path_and_leaf_index() {
        let t = sample_tree();
        assert_eq!(t.decision_path(&[0.4, 0.2]), vec![0, 1, 3]);
        assert_eq!(t.decision_path(&[0.9, 0.0]), vec![0, 2]);
        assert_eq!(t.leaf_index(&[0.4, 0.8]), 4);
    }

    #[test]
    fn structural_accessors() {
        let t = sample_tree();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.internal_nodes().collect::<Vec<_>>(), vec![0, 1]);
        let c = Tree::constant(7.5, 10);
        assert_eq!(c.predict(&[1.0]), 7.5);
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn validate_accepts_good_tree() {
        assert!(sample_tree().validate().is_ok());
        assert!(Tree::constant(0.0, 1).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_counts() {
        let mut t = sample_tree();
        t.nodes[1].count = 61; // != 25 + 35
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_child() {
        let mut t = sample_tree();
        t.nodes[0].right = 99;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_cycle() {
        let t = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 0.0, 0),
                Node::split(1, 0.5, 0, 2, 0.0, 0), // points back to root
                Node::leaf(1.0, 0),
            ],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty() {
        let t = Tree { nodes: vec![] };
        assert!(t.validate().is_err());
    }
}
