//! # gef-forest
//!
//! Decision-tree forests built from scratch: the substrate the GEF paper
//! takes as input. The paper trains LightGBM gradient-boosted forests;
//! this crate provides an equivalent histogram-based, leaf-wise GBDT
//! trainer ([`GbdtTrainer`]), a Random Forest trainer
//! ([`random_forest::RandomForestTrainer`], the paper's future-work
//! target), fast single/batch prediction, a LightGBM-style text model
//! format plus JSON (de)serialization ([`io`]), and the model statistics
//! GEF consumes: per-node split gain, per-node cover, and the full
//! per-feature threshold lists ([`importance`]).
//!
//! ## Quick example
//!
//! ```
//! use gef_forest::{GbdtParams, GbdtTrainer, Objective};
//!
//! // y = 3·x0 + step on x1
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![i as f64 / 200.0, ((i * 7) % 13) as f64 / 13.0])
//!     .collect();
//! let ys: Vec<f64> = xs
//!     .iter()
//!     .map(|x| 3.0 * x[0] + if x[1] > 0.5 { 1.0 } else { 0.0 })
//!     .collect();
//! let params = GbdtParams {
//!     num_trees: 50,
//!     num_leaves: 8,
//!     learning_rate: 0.2,
//!     ..GbdtParams::default()
//! };
//! let forest = GbdtTrainer::new(params).fit(&xs, &ys).unwrap();
//! let pred = forest.predict(&[0.5, 0.9]);
//! assert!((pred - 2.5).abs() < 0.3);
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod binning;
pub mod codec;
pub mod gbdt;
pub mod importance;
pub mod io;
pub mod kernel;
pub mod layout;
pub mod random_forest;
pub mod tree;
pub mod tune;

pub use gbdt::{GbdtParams, GbdtTrainer};
pub use layout::FlatForest;
pub use random_forest::{RandomForestParams, RandomForestTrainer};
pub use tree::{Node, Tree};

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Training / prediction objective of a forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Squared-error regression; raw scores are predictions.
    RegressionL2,
    /// Binary classification with logistic loss; raw scores are
    /// log-odds, [`Forest::predict_proba`] applies the sigmoid.
    BinaryLogistic,
}

impl Objective {
    /// Apply the inverse link to a raw margin score.
    #[inline]
    pub fn transform(&self, raw: f64) -> f64 {
        match self {
            Objective::RegressionL2 => raw,
            Objective::BinaryLogistic => sigmoid(raw),
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// An ensemble of decision trees with a base (bias) score.
///
/// Raw prediction is `base_score + scale · Σ_t tree_t(x)`; `scale` is 1
/// for GBDT (shrinkage is baked into leaf values at training time) and
/// `1/T` for Random Forests (averaging).
///
/// Construct with [`Forest::new`] — alongside the public model fields
/// the forest carries a private, digest-validated cache of its
/// flattened inference layout ([`FlatForest`]) that the batch
/// prediction entry points build once and reuse (see [`kernel`]).
/// Mutating the public fields in place is still allowed: the cache
/// re-validates against [`Forest::content_digest`] on every kernel
/// dispatch and rebuilds when the model changed.
#[derive(Debug, Clone)]
pub struct Forest {
    /// The member trees.
    pub trees: Vec<Tree>,
    /// Constant added to every raw prediction.
    pub base_score: f64,
    /// Multiplier applied to the summed tree outputs.
    pub scale: f64,
    /// Objective the forest was trained with.
    pub objective: Objective,
    /// Number of input features (width of a feature vector).
    pub num_features: usize,
    /// Cached flattened layout for the branchless kernel.
    layout: layout::LayoutCache,
}

/// Smallest batch the flattened kernel takes over from the walker: the
/// per-call digest validation is O(total nodes), so tiny batches (the
/// single-row service predicts, unit-test probes) stay on the walker
/// where the fixed cost is lower.
const KERNEL_MIN_ROWS: usize = 64;

/// Companion work floor: `rows × trees` below this predicts too few
/// leaves to amortize the digest check plus block setup.
const KERNEL_MIN_WORK: usize = 8192;

/// Rows per cooperative deadline check on the serial kernel path,
/// matching the walker's 1024-row checkpoint stride.
const KERNEL_STRIPE_ROWS: usize = 1024;

/// `[start, end)` stripes of at most [`KERNEL_STRIPE_ROWS`] rows.
fn stripes(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n)
        .step_by(KERNEL_STRIPE_ROWS.max(1))
        .map(move |s| (s, (s + KERNEL_STRIPE_ROWS).min(n)))
}

impl Forest {
    /// Assemble a forest from parts (trainers, parsers, and tests all
    /// construct through here so the layout cache comes along).
    ///
    /// ```
    /// use gef_forest::{Forest, Objective, Tree};
    ///
    /// let forest = Forest::new(
    ///     vec![Tree::constant(1.0, 1)],
    ///     0.5,
    ///     1.0,
    ///     Objective::RegressionL2,
    ///     0,
    /// );
    /// assert_eq!(forest.predict(&[]), 1.5);
    /// ```
    pub fn new(
        trees: Vec<Tree>,
        base_score: f64,
        scale: f64,
        objective: Objective,
        num_features: usize,
    ) -> Forest {
        Forest {
            trees,
            base_score,
            scale,
            objective,
            num_features,
            layout: layout::LayoutCache::new(),
        }
    }

    /// The forest's flattened inference layout, built on first use and
    /// cached against [`Forest::content_digest`]. `None` when the
    /// structure is outside the kernel's validated invariants (see
    /// [`FlatForest::build`]) — batch prediction then stays on the
    /// recursive walker.
    pub fn flattened(&self) -> Option<Arc<FlatForest>> {
        self.layout.get_or_build(self)
    }

    /// Whether a flattened layout snapshot is currently cached (used by
    /// the `xp_regress` kernel-phase expectation; a cached *rejection*
    /// answers `false`).
    pub fn layout_cached(&self) -> bool {
        self.layout.is_cached()
    }

    /// The cached kernel layout, iff this batch should ride the kernel:
    /// large enough to amortize the digest check, no fault-injection
    /// sites armed (the walker owns the per-row `forest.predict_nan`
    /// hit schedule), and the structure passes kernel validation.
    fn kernel_layout(&self, n_rows: usize) -> Option<Arc<FlatForest>> {
        if n_rows < KERNEL_MIN_ROWS
            || n_rows.saturating_mul(self.trees.len()) < KERNEL_MIN_WORK
            || gef_trace::fault::any_armed()
        {
            return None;
        }
        self.flattened()
    }
    /// Raw margin prediction for a single instance.
    pub fn predict_raw(&self, x: &[f64]) -> f64 {
        debug_assert!(x.len() >= self.num_features);
        if gef_trace::fault::fires("forest.predict_nan") {
            return f64::NAN;
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        self.base_score + self.scale * sum
    }

    /// Prediction on the response scale (identity for regression,
    /// probability for binary classification).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.objective.transform(self.predict_raw(x))
    }

    /// Probability prediction for binary classification forests.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(self.objective, Objective::BinaryLogistic);
        sigmoid(self.predict_raw(x))
    }

    /// Batch raw predictions.
    ///
    /// Rides the flattened kernel ([`kernel::predict_raw`]) when the
    /// batch clears the kernel work floor; otherwise the per-row walker.
    /// Infallible (no deadline checkpoints) and always serial, matching
    /// its original contract — the pool-dispatched, deadline-aware entry
    /// point is [`Forest::predict_batch`].
    pub fn predict_raw_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if let Some(flat) = self.kernel_layout(xs.len()) {
            return kernel::predict_raw(&flat, xs);
        }
        xs.iter().map(|x| self.predict_raw(x)).collect()
    }

    /// Whether a batch is large enough to dispatch to the gef-par pool.
    /// Purely a latency threshold — per-row predictions are independent,
    /// so the parallel and serial paths compute identical values.
    #[inline]
    fn batch_is_parallel(&self, n: usize) -> bool {
        n >= 512 && n.saturating_mul(self.trees.len().max(1)) >= (1 << 18)
    }

    /// Batch response-scale predictions, dispatched to the gef-par pool
    /// (fixed chunk boundaries, bit-identical to serial at any thread
    /// count) when the batch is large enough to amortize dispatch.
    ///
    /// Batches that clear the kernel work floor ride the flattened
    /// branchless kernel ([`kernel`]) under the `forest.kernel` timeline
    /// label; small batches, kernel-incompatible structures, and runs
    /// with fault-injection sites armed stay on the per-row recursive
    /// walker. Both paths produce bit-identical predictions (the
    /// differential-oracle suite asserts this).
    ///
    /// Fallible: a hard-deadline trip mid-batch (cooperative checkpoints
    /// between serial row stripes, between chunks on the pool) returns
    /// [`ForestError::DeadlineExceeded`]; a worker panic comes back as
    /// [`ForestError::WorkerPanicked`] instead of unwinding.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>> {
        if let Some(flat) = self.kernel_layout(xs.len()) {
            let mut out = vec![0.0; xs.len()];
            if !self.batch_is_parallel(xs.len()) {
                for (start, end) in stripes(xs.len()) {
                    if gef_trace::budget::hard_exceeded() {
                        return Err(ForestError::DeadlineExceeded { at: "predict" });
                    }
                    kernel::response_chunk(&flat, xs, start, &mut out[start..end]);
                }
                return Ok(out);
            }
            gef_par::for_each_chunk_mut(
                &mut out,
                gef_par::Options::coarse().with_label("forest.kernel"),
                |_, start, chunk| kernel::response_chunk(&flat, xs, start, chunk),
            )?;
            return Ok(out);
        }
        let mut out = vec![0.0; xs.len()];
        if !self.batch_is_parallel(xs.len()) {
            for (ri, (x, o)) in xs.iter().zip(out.iter_mut()).enumerate() {
                // Row-striped checkpoint: cheap relaxed load, checked at
                // chunk-sized strides so huge serial batches stay bounded.
                if ri % 1024 == 0 && gef_trace::budget::hard_exceeded() {
                    return Err(ForestError::DeadlineExceeded { at: "predict" });
                }
                *o = self.predict(x);
            }
            return Ok(out);
        }
        gef_par::for_each_chunk_mut(
            &mut out,
            gef_par::Options::coarse().with_label("forest.predict_batch"),
            |_, start, chunk| {
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = self.predict(&xs[start + k]);
                }
            },
        )?;
        Ok(out)
    }

    /// Raw margin prediction plus the number of tree nodes visited.
    pub fn predict_raw_counted(&self, x: &[f64]) -> (f64, u64) {
        debug_assert!(x.len() >= self.num_features);
        if gef_trace::fault::fires("forest.predict_nan") {
            return (f64::NAN, 0);
        }
        let mut visited = 0u64;
        let mut sum = 0.0;
        for t in &self.trees {
            let (v, n) = t.predict_counted(x);
            sum += v;
            visited += n;
        }
        (self.base_score + self.scale * sum, visited)
    }

    /// Batch response-scale predictions plus the total number of tree
    /// nodes visited across the batch.
    ///
    /// Same parallelization policy as [`Forest::predict_batch`]; the
    /// visit count feeds the `forest.nodes_visited` telemetry counter
    /// during D* labeling. The kernel path reproduces the walker's
    /// exact visit totals from the layout's per-node depth table.
    pub fn predict_batch_counted(&self, xs: &[Vec<f64>]) -> Result<(Vec<f64>, u64)> {
        if let Some(flat) = self.kernel_layout(xs.len()) {
            let mut out = vec![0.0; xs.len()];
            if !self.batch_is_parallel(xs.len()) {
                let mut visited = 0u64;
                for (start, end) in stripes(xs.len()) {
                    if gef_trace::budget::hard_exceeded() {
                        return Err(ForestError::DeadlineExceeded { at: "predict" });
                    }
                    visited += kernel::counted_chunk(&flat, xs, start, &mut out[start..end]);
                }
                return Ok((out, visited));
            }
            let visited = std::sync::atomic::AtomicU64::new(0);
            gef_par::for_each_chunk_mut(
                &mut out,
                gef_par::Options::coarse().with_label("forest.kernel"),
                |_, start, chunk| {
                    let local = kernel::counted_chunk(&flat, xs, start, chunk);
                    visited.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                },
            )?;
            return Ok((out, visited.into_inner()));
        }
        let mut out = vec![0.0; xs.len()];
        if !self.batch_is_parallel(xs.len()) {
            let mut visited = 0u64;
            for (ri, (x, o)) in xs.iter().zip(out.iter_mut()).enumerate() {
                if ri % 1024 == 0 && gef_trace::budget::hard_exceeded() {
                    return Err(ForestError::DeadlineExceeded { at: "predict" });
                }
                let (raw, n) = self.predict_raw_counted(x);
                visited += n;
                *o = self.objective.transform(raw);
            }
            return Ok((out, visited));
        }
        let visited = std::sync::atomic::AtomicU64::new(0);
        gef_par::for_each_chunk_mut(
            &mut out,
            gef_par::Options::coarse().with_label("forest.predict_batch"),
            |_, start, chunk| {
                let mut local = 0u64;
                for (k, o) in chunk.iter_mut().enumerate() {
                    let (raw, n) = self.predict_raw_counted(&xs[start + k]);
                    local += n;
                    *o = self.objective.transform(raw);
                }
                visited.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            },
        )?;
        Ok((out, visited.into_inner()))
    }

    /// Total number of nodes (internal + leaves) across all trees.
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.nodes.len()).sum()
    }

    /// Total number of leaves across all trees.
    pub fn num_leaves(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.nodes.iter().filter(|n| n.is_leaf()).count())
            .sum()
    }

    /// Stable 64-bit content digest of the full model structure
    /// (domain-tagged `gef-forest/v1`): every node's split predicate and
    /// leaf value, the base score, scale, and objective. Bit-identical
    /// forests — and only those — digest equal; incident dumps and
    /// explanation provenance use it to tie an artifact to the exact
    /// model that produced it.
    pub fn content_digest(&self) -> u64 {
        let mut d = gef_trace::hash::Digest::new("gef-forest/v1");
        d.write_u64(self.num_features as u64);
        d.write_f64(self.base_score);
        d.write_f64(self.scale);
        d.write_str(match self.objective {
            Objective::RegressionL2 => "regression_l2",
            Objective::BinaryLogistic => "binary_logistic",
        });
        d.write_u64(self.trees.len() as u64);
        for tree in &self.trees {
            d.write_u64(tree.nodes.len() as u64);
            for n in &tree.nodes {
                d.write_u64(n.feature as i64 as u64);
                d.write_f64(n.threshold);
                d.write_u64(u64::from(n.left));
                d.write_u64(u64::from(n.right));
                d.write_f64(n.value);
            }
        }
        d.finish()
    }
}

/// Errors produced while training or parsing a forest.
#[derive(Debug, Clone, PartialEq)]
pub enum ForestError {
    /// Training data is empty or inconsistently shaped.
    InvalidData(String),
    /// Invalid hyper-parameter combination.
    InvalidParams(String),
    /// Model parsing failed.
    Parse(String),
    /// The run's hard wall-clock deadline ([`gef_trace::budget`]) passed
    /// at a cooperative checkpoint (per boosting round or per predict
    /// chunk).
    DeadlineExceeded {
        /// Checkpoint that observed the trip (`"train"`, `"predict"`).
        at: &'static str,
    },
    /// A parallel worker panicked during training or batch prediction;
    /// carries the first panic's payload (see `gef_par::ParError`).
    WorkerPanicked(String),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::InvalidData(m) => write!(f, "invalid training data: {m}"),
            ForestError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            ForestError::Parse(m) => write!(f, "model parse error: {m}"),
            ForestError::DeadlineExceeded { at } => {
                write!(f, "hard deadline exceeded in the forest (at {at})")
            }
            ForestError::WorkerPanicked(payload) => {
                write!(f, "parallel worker panicked in the forest: {payload}")
            }
        }
    }
}

impl std::error::Error for ForestError {}

impl From<gef_par::ParError> for ForestError {
    fn from(e: gef_par::ParError) -> Self {
        match e {
            gef_par::ParError::TaskPanicked { payload } => ForestError::WorkerPanicked(payload),
            gef_par::ParError::Cancelled => ForestError::DeadlineExceeded { at: "parallel" },
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ForestError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_prediction_matches_plain() {
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 1.0, 4),
                Node::leaf(-1.0, 2),
                Node::leaf(1.0, 2),
            ],
        };
        let forest = Forest::new(
            vec![tree.clone(), tree],
            0.25,
            1.0,
            Objective::RegressionL2,
            1,
        );
        let xs = vec![vec![0.2], vec![0.8]];
        let (preds, visited) = forest.predict_batch_counted(&xs).unwrap();
        assert_eq!(preds, forest.predict_batch(&xs).unwrap());
        // 2 rows × 2 trees × 2 nodes per root-to-leaf path.
        assert_eq!(visited, 8);
        let (raw, n) = forest.predict_raw_counted(&xs[0]);
        assert_eq!(raw, forest.predict_raw(&xs[0]));
        assert_eq!(n, 4);
    }

    #[test]
    fn content_digest_tracks_structure() {
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 1.0, 4),
                Node::leaf(-1.0, 2),
                Node::leaf(1.0, 2),
            ],
        };
        let forest = Forest::new(vec![tree], 0.25, 1.0, Objective::RegressionL2, 1);
        let a = forest.content_digest();
        assert_eq!(a, forest.clone().content_digest(), "digest is stable");
        let mut tweaked = forest.clone();
        tweaked.trees[0].nodes[0].threshold = 0.5000001;
        assert_ne!(
            a,
            tweaked.content_digest(),
            "threshold change changes digest"
        );
        let mut relabeled = forest;
        relabeled.objective = Objective::BinaryLogistic;
        assert_ne!(
            a,
            relabeled.content_digest(),
            "objective change changes digest"
        );
    }

    #[test]
    fn sigmoid_props() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stable for extreme inputs.
        assert_eq!(sigmoid(-800.0), 0.0);
        assert!((sigmoid(800.0) - 1.0).abs() < 1e-12);
        // Symmetry σ(-x) = 1 - σ(x).
        for &x in &[0.1, 1.5, 7.0] {
            assert!((sigmoid(-x) + sigmoid(x) - 1.0).abs() < 1e-12);
        }
    }
}
