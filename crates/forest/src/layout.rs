//! Flattened struct-of-arrays forest layout for the branchless
//! inference kernel ([`crate::kernel`]).
//!
//! [`Tree`](crate::Tree)/[`Node`](crate::Node) store a forest the way
//! the *trainer* grows it: one
//! 40-byte record per node mixing hot traversal fields (feature,
//! threshold, children) with cold training statistics (gain, cover) and
//! the leaf payload. Batch prediction touches only the hot fields, so
//! the walker drags ~2.5x the necessary bytes through the cache and
//! takes an unpredictable branch per level. [`FlatForest`] re-packs the
//! same model into parallel arrays sized for the descent loop:
//!
//! ```text
//!          per node (all trees concatenated, tree t at nodes[root(t)..])
//!          ┌──────┬──────┬──────┬──────┐ hot: 16 bytes/node, one record
//!          │ feat │ rank │ left │ right│   u32 each
//!          ├──────┼──────┤──────┴──────┘
//!          │ out  │depth1│               cold: touched once per descent
//!          └──────┴──────┘
//!   ft_values[ft_offsets[f]..]  per-feature sorted thresholds (ranks)
//!   leaf_values[out] → f64      (dictionary: unique leaf payloads)
//! ```
//!
//! * **Rank quantization.** Each feature's unique split thresholds are
//!   sorted into a table and nodes store the u32 *rank* of their
//!   threshold. The kernel ranks each row's feature value once per row
//!   block (`rank(x) = #{t in table : t < x}`, a short binary search),
//!   after which every descent comparison is a pure `u32` compare:
//!   `x <= t  ⟺  rank(x) <= rank(t)` for the finite thresholds build
//!   admits, and NaN features rank as `u32::MAX` so they compare false
//!   and route right, exactly like the walker. Histogram training draws
//!   thresholds from at most `max_bins` bin edges per feature, so the
//!   tables are tiny (hundreds of entries) and stay resident in L1.
//!   Unlike lossy `f32` quantization this is *bit-exact* — the rank
//!   compare reproduces the walker's `f64` compare on every input —
//!   which is what lets the differential oracle demand bitwise-equal
//!   predictions. Leaf values are interned into a dictionary and
//!   gathered once per row × tree at accumulation time.
//! * **Self-looping leaves.** A leaf's children both point at the leaf
//!   itself, so the descent loop needs no `is_leaf` branch: it runs a
//!   fixed `depth(t)` iterations and rows that reach a leaf early just
//!   park there. `feat` of a leaf is 0 (a always-valid dummy — the
//!   comparison result is irrelevant when both children are the same).
//! * **Absolute child indices.** `left`/`right` index the concatenated
//!   node arrays directly; no per-tree base-pointer arithmetic in the
//!   hot loop.
//! * **Per-node `depth1`.** Root-to-node path length (root = 1). The
//!   counted kernel recovers the walker's exact `nodes_visited`
//!   telemetry as `depth1[leaf]` without counting during descent.
//!
//! When every tree has ≤ 32 leaves (the paper configuration), build
//! additionally derives QuickScorer tables (`QsTables`): per-tree leaf
//! bitvector masks grouped by feature and sorted by threshold, plus
//! slot-aligned leaf payloads. The kernel then scores by clearing
//! ruled-out leaves with AND-masks instead of descending at all — see
//! [`crate::kernel`] for the algorithm. Forests with wider trees skip
//! the tables (`qs: None`) and ride the descent arrays above.
//!
//! Build validates the structural invariants the kernel's unchecked
//! indexing relies on (children in range, every non-root node reachable
//! exactly once, internal features inside `0..num_features`). A forest
//! that fails validation — hand-built test trees with dangling children,
//! or a `num_features` narrower than a split — is rejected and
//! [`Forest::predict_batch`] falls back to the recursive walker.
//!
//! The layout is built once and cached on the [`Forest`] behind a
//! content-digest check (see [`LayoutCache`]), so repeated labeling —
//! `gef-serve` batch predicts, `xp_regress` warm iterations — skips the
//! rebuild entirely while in-place model mutation still invalidates
//! stale snapshots.

use crate::{Forest, ForestError, Objective, Result};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A [`Forest`] re-packed into flattened struct-of-arrays form for the
/// branchless batch-inference kernel.
///
/// Immutable snapshot: it records the source forest's
/// [`Forest::content_digest`] so the cache can tell when the model was
/// mutated in place and the snapshot no longer applies.
///
/// ```
/// use gef_forest::{layout::FlatForest, Forest, Node, Objective, Tree};
///
/// let tree = Tree {
///     nodes: vec![
///         Node::split(0, 0.5, 1, 2, 1.0, 4),
///         Node::leaf(-1.0, 2),
///         Node::leaf(1.0, 2),
///     ],
/// };
/// let forest = Forest::new(vec![tree], 0.0, 1.0, Objective::RegressionL2, 1);
/// let flat = FlatForest::build(&forest).unwrap();
/// assert_eq!(flat.num_nodes(), 3);
/// assert_eq!(flat.max_depth(), 1);
/// // Dictionary quantization: 1 unique threshold, 2 unique leaf values.
/// assert_eq!(flat.num_thresholds(), 1);
/// assert_eq!(flat.num_leaf_values(), 2);
/// ```
#[derive(Debug)]
pub struct FlatForest {
    /// Hot node records (one per node, all trees concatenated): the
    /// 16 bytes the descent loop touches, packed so a node visit pulls
    /// one cache line, not four.
    pub(crate) nodes: Vec<HotNode>,
    /// Leaf-value dictionary code per node (`0` for internal nodes).
    pub(crate) out_code: Vec<u32>,
    /// Root-to-node path length, root = 1 (the walker's per-tree
    /// `nodes_visited` when the descent ends at this node).
    pub(crate) depth1: Vec<u32>,
    /// Rank-quantization tables: feature `f`'s sorted unique split
    /// thresholds live at `ft_values[ft_offsets[f]..ft_offsets[f+1]]`.
    /// A node splitting on `f` stores the *rank* of its threshold in
    /// `f`'s table, and the kernel pre-ranks each row's feature values
    /// once per row block, turning every descent comparison into a pure
    /// `u32` compare with no `f64` gather (see [`crate::kernel`]).
    pub(crate) ft_offsets: Vec<u32>,
    /// Concatenated per-feature sorted threshold tables.
    pub(crate) ft_values: Vec<f64>,
    /// Unique leaf payloads, in first-occurrence order.
    pub(crate) leaf_values: Vec<f64>,
    /// Absolute root node index per tree.
    pub(crate) roots: Vec<u32>,
    /// Maximum root-to-leaf edge count per tree (descent iterations).
    pub(crate) depth: Vec<u32>,
    /// Cache-blocking plan: consecutive `[start, end)` tree ranges whose
    /// combined node arrays fit the kernel's tree-block working set
    /// (~[`crate::kernel::TREE_BLOCK_NODES`] hot node records). Hoisted
    /// here so repeated labeling never re-derives per-call metadata.
    pub(crate) tree_blocks: Vec<(u32, u32)>,
    /// Forest-level prediction parameters, copied from the source.
    pub(crate) base_score: f64,
    /// Multiplier applied to the summed tree outputs.
    pub(crate) scale: f64,
    /// Objective (for the response-scale transform).
    pub(crate) objective: Objective,
    /// Feature-vector width every internal `feat` is validated against.
    pub(crate) num_features: usize,
    /// QuickScorer bitvector tables ([`QsTables`]), present whenever
    /// every tree has at most 32 leaves. When present the kernel scores
    /// rows by streaming mask applications instead of predicated
    /// descent; wider trees fall back to the descent path.
    pub(crate) qs: Option<QsTables>,
    /// [`Forest::content_digest`] of the forest this was built from.
    pub(crate) source_digest: u64,
}

/// The 16-byte hot node record: exactly what one descent step reads.
/// `feat` is the tested feature (`0` for leaves — irrelevant, both
/// children self-loop and always `< num_features` for internal nodes),
/// `thr_code` is the rank of the node's threshold within feature
/// `feat`'s sorted table (`0` for leaves), and `left`/`right` are
/// absolute indices into the concatenated node array (self for leaves).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct HotNode {
    pub(crate) feat: u32,
    pub(crate) thr_code: u32,
    pub(crate) left: u32,
    pub(crate) right: u32,
}

/// QuickScorer-style bitvector scoring tables (Lucchese et al.,
/// SIGIR'15 — the same group as the source paper), built whenever every
/// tree has at most 32 leaves, which covers the paper configuration
/// (32-leaf trees) exactly.
///
/// The idea: number each tree's leaves left-to-right (in-order) and
/// keep one bit per leaf in a per-tree `u32`, initially all ones. A
/// split condition `x <= t` that evaluates *false* makes the node's
/// entire **left** subtree unreachable — a contiguous bit span under
/// in-order numbering — so each internal node becomes one precomputed
/// AND-mask. For a row, the false conditions of feature `f` are exactly
/// the entries with `t < x[f]`: a prefix of `f`'s threshold-sorted
/// entry list, found by the same rank search the descent kernel uses.
/// After all masks are applied, the exit leaf is the *lowest* surviving
/// bit (the walker always exits at the leftmost leaf not cut off by a
/// false condition). Scoring a row is therefore a handful of streaming
/// `AND`s over a sequential entry array — no per-node pointer chases at
/// all. Trees wider than 32 leaves fall back to predicated descent.
#[derive(Debug)]
pub(crate) struct QsTables {
    /// Per-feature entry ranges: feature `f`'s entries live at
    /// `thr/ent[offsets[f]..offsets[f+1]]`, sorted by threshold.
    /// Unlike the rank tables these keep duplicates — one entry per
    /// internal node.
    pub(crate) offsets: Vec<u32>,
    /// Entry thresholds, sorted per feature (`total_cmp`, so the
    /// `t < x` prefix property holds bit-exactly).
    pub(crate) thr: Vec<f64>,
    /// Packed entry, `mask << 32 | tree`: one load per application.
    /// `mask` is the complement of the node's left-subtree leaf span in
    /// its tree's in-order leaf numbering; `tree` selects the bitvector
    /// it ANDs into.
    pub(crate) ent: Vec<u64>,
    /// Per-tree leaf ranges into the slot-aligned arrays below (prefix
    /// sums of leaf counts; every validated tree has at least one leaf).
    pub(crate) leaf_offsets: Vec<u32>,
    /// In-order leaf slot → leaf payload (bit-exact copy of the node's
    /// value, so the exit-leaf gather is one load, not a node → code →
    /// dictionary chase).
    pub(crate) leaf_value: Vec<f64>,
    /// In-order leaf slot → root-to-leaf path length (root = 1), the
    /// walker's `nodes_visited` for a row exiting at this leaf.
    pub(crate) leaf_depth1: Vec<u32>,
}

/// Build the QuickScorer tables, or `None` when some tree has more than
/// 32 leaves (the bitvector holds one `u32` bit per leaf). Runs after
/// [`FlatForest::build`]'s structural validation, so the explicit-stack
/// walks below are guaranteed to terminate.
fn build_qs_tables(forest: &Forest) -> Option<QsTables> {
    let nf = forest.num_features;
    let mut per_feat: Vec<Vec<(f64, u64)>> = vec![Vec::new(); nf];
    let mut leaf_offsets = Vec::with_capacity(forest.trees.len() + 1);
    let mut leaf_value: Vec<f64> = Vec::new();
    let mut leaf_depth1: Vec<u32> = Vec::new();
    leaf_offsets.push(0u32);
    for (ti, tree) in forest.trees.iter().enumerate() {
        let n = tree.nodes.len();
        // In-order leaf numbering plus per-subtree leaf spans: a
        // pre-order walk that visits left children first assigns leaf
        // slots left-to-right; the deferred (`children_done`) re-visit
        // folds child spans into `lo`/`cnt` post-order.
        let mut lo = vec![0u32; n];
        let mut cnt = vec![0u32; n];
        let mut next_slot = 0u32;
        let mut stack = vec![(0usize, 1u32, false)];
        while let Some((i, d1, children_done)) = stack.pop() {
            let node = &tree.nodes[i];
            if node.is_leaf() {
                lo[i] = next_slot;
                cnt[i] = 1;
                leaf_value.push(node.value);
                leaf_depth1.push(d1);
                next_slot += 1;
                continue;
            }
            if children_done {
                let (l, r) = (node.left as usize, node.right as usize);
                lo[i] = lo[l];
                cnt[i] = cnt[l] + cnt[r];
            } else {
                stack.push((i, d1, true));
                stack.push((node.right as usize, d1 + 1, false));
                stack.push((node.left as usize, d1 + 1, false));
            }
        }
        if next_slot > 32 {
            return None;
        }
        for node in &tree.nodes {
            if node.is_leaf() {
                continue;
            }
            // The left subtree's leaves occupy the contiguous bit span
            // [lo, lo+cnt). cnt of a left child is at most 31 here: the
            // tree has <= 32 leaves total and the right subtree holds
            // at least one, so the shift cannot overflow.
            let l = node.left as usize;
            let clear = ((1u32 << cnt[l]) - 1) << lo[l];
            let packed = (u64::from(!clear) << 32) | ti as u64;
            per_feat[node.feature as usize].push((node.threshold, packed));
        }
        leaf_offsets.push(leaf_value.len() as u32);
    }
    let mut qs = QsTables {
        offsets: Vec::with_capacity(nf + 1),
        thr: Vec::new(),
        ent: Vec::new(),
        leaf_offsets,
        leaf_value,
        leaf_depth1,
    };
    qs.offsets.push(0);
    for entries in &mut per_feat {
        // Entries with equal thresholds are interchangeable: the `t < x`
        // predicate gives them identical verdicts and the masks AND
        // commutatively, so the sort need not be stable.
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, packed) in entries.iter() {
            qs.thr.push(t);
            qs.ent.push(packed);
        }
        let end = u32::try_from(qs.thr.len()).ok()?;
        qs.offsets.push(end);
    }
    // The kernel's lane-predicated application compares cutoffs as
    // signed i32 vector lanes; keep every entry index representable.
    if qs.thr.len() > i32::MAX as usize {
        return None;
    }
    Some(qs)
}

/// Interner: f64 (by bit pattern, so NaNs and signed zeros stay
/// distinct and bit-exact) → dense u32 code.
struct Dict {
    codes: HashMap<u64, u32>,
    values: Vec<f64>,
}

impl Dict {
    fn new() -> Dict {
        Dict {
            codes: HashMap::new(),
            values: Vec::new(),
        }
    }

    fn intern(&mut self, v: f64) -> Result<u32> {
        if let Some(&c) = self.codes.get(&v.to_bits()) {
            return Ok(c);
        }
        let c = u32::try_from(self.values.len())
            .map_err(|_| ForestError::InvalidData("dictionary exceeds u32 codes".into()))?;
        self.codes.insert(v.to_bits(), c);
        self.values.push(v);
        Ok(c)
    }
}

impl FlatForest {
    /// Flatten `forest` into struct-of-arrays form, validating the
    /// structural invariants the kernel's unchecked indexing needs.
    ///
    /// Errors with [`ForestError::InvalidData`] when a tree is empty or
    /// cyclic, a child index is out of range, a non-root node is not
    /// referenced exactly once, an internal node tests a feature
    /// `>= forest.num_features`, or a split threshold is non-finite —
    /// shapes the recursive walker either misbehaves on (panic or loop)
    /// or that rank quantization cannot represent (a NaN/∞ threshold),
    /// so callers fall back rather than fail.
    pub fn build(forest: &Forest) -> Result<FlatForest> {
        let total: usize = forest.trees.iter().map(|t| t.nodes.len()).sum();
        if u32::try_from(total).is_err() {
            return Err(ForestError::InvalidData(
                "forest exceeds u32 node indices".into(),
            ));
        }
        let mut flat = FlatForest {
            nodes: Vec::with_capacity(total),
            out_code: Vec::with_capacity(total),
            depth1: vec![0; total],
            ft_offsets: Vec::with_capacity(forest.num_features + 1),
            ft_values: Vec::new(),
            leaf_values: Vec::new(),
            roots: Vec::with_capacity(forest.trees.len()),
            depth: Vec::with_capacity(forest.trees.len()),
            tree_blocks: Vec::new(),
            base_score: forest.base_score,
            scale: forest.scale,
            objective: forest.objective,
            num_features: forest.num_features,
            qs: None,
            source_digest: forest.content_digest(),
        };
        let mut out_dict = Dict::new();

        // Pass 1: per-feature rank-quantization tables. Sorted by
        // total_cmp (which refines the numeric order for the finite
        // thresholds we admit) and deduplicated by bit pattern, so a
        // node's threshold is found at exactly one rank and the
        // rank-compare `rank(x) <= rank(t)` reproduces `x <= t`
        // bit-for-bit.
        let mut per_feat: Vec<Vec<f64>> = vec![Vec::new(); forest.num_features];
        for (ti, tree) in forest.trees.iter().enumerate() {
            for node in &tree.nodes {
                if node.is_leaf() {
                    continue;
                }
                if node.feature < 0 || node.feature as usize >= forest.num_features {
                    return Err(ForestError::InvalidData(format!(
                        "tree {ti}: split feature out of range"
                    )));
                }
                if !node.threshold.is_finite() {
                    return Err(ForestError::InvalidData(format!(
                        "tree {ti}: non-finite split threshold"
                    )));
                }
                per_feat[node.feature as usize].push(node.threshold);
            }
        }
        flat.ft_offsets.push(0);
        for table in &mut per_feat {
            table.sort_by(|a, b| a.total_cmp(b));
            table.dedup_by(|a, b| a.to_bits() == b.to_bits());
            flat.ft_values.extend_from_slice(table);
            let end = u32::try_from(flat.ft_values.len())
                .map_err(|_| ForestError::InvalidData("threshold table exceeds u32".into()))?;
            flat.ft_offsets.push(end);
        }

        let mut offset = 0u32;
        for (ti, tree) in forest.trees.iter().enumerate() {
            let n = tree.nodes.len();
            if n == 0 {
                return Err(ForestError::InvalidData(format!("tree {ti} is empty")));
            }
            let bad = |what: &str| ForestError::InvalidData(format!("tree {ti}: {what}"));
            // Reference counts: the kernel requires the same shape
            // Tree::validate does (minus the cover consistency, which
            // prediction never reads).
            let mut refs = vec![0u8; n];
            for (i, node) in tree.nodes.iter().enumerate() {
                if node.is_leaf() {
                    let own = offset + i as u32;
                    flat.nodes.push(HotNode {
                        feat: 0,
                        thr_code: 0,
                        left: own,
                        right: own,
                    });
                    flat.out_code.push(out_dict.intern(node.value)?);
                    continue;
                }
                let (l, r) = (node.left as usize, node.right as usize);
                if l >= n || r >= n || l == i || r == i {
                    return Err(bad("child index out of range"));
                }
                refs[l] = refs[l].saturating_add(1);
                refs[r] = refs[r].saturating_add(1);
                // Rank of this node's threshold within its feature's
                // table (pass 1 interned it, so the exact bit pattern
                // is present).
                let f = node.feature as usize;
                let lo = flat.ft_offsets[f] as usize;
                let hi = flat.ft_offsets[f + 1] as usize;
                let rank = flat.ft_values[lo..hi]
                    .binary_search_by(|probe| probe.total_cmp(&node.threshold))
                    .map_err(|_| bad("threshold missing from rank table"))?;
                flat.nodes.push(HotNode {
                    feat: node.feature as u32,
                    thr_code: rank as u32,
                    left: offset + node.left,
                    right: offset + node.right,
                });
                flat.out_code.push(0);
            }
            if refs[0] != 0 {
                return Err(bad("root referenced as a child"));
            }
            if let Some(i) = (1..n).find(|&i| refs[i] != 1) {
                return Err(bad(&format!("node {i} referenced {} times", refs[i])));
            }
            // Depth labelling doubles as the reachability/acyclicity
            // proof: with every non-root referenced exactly once, a
            // root walk that visits all n nodes exactly once rules out
            // cycles and orphans.
            let mut seen = vec![false; n];
            let mut stack = vec![(0usize, 1u32)];
            let mut visited = 0usize;
            let mut max_depth1 = 0u32;
            while let Some((i, d1)) = stack.pop() {
                if seen[i] {
                    return Err(bad("cycle detected"));
                }
                seen[i] = true;
                visited += 1;
                flat.depth1[offset as usize + i] = d1;
                max_depth1 = max_depth1.max(d1);
                let node = &tree.nodes[i];
                if !node.is_leaf() {
                    stack.push((node.left as usize, d1 + 1));
                    stack.push((node.right as usize, d1 + 1));
                }
            }
            if visited != n {
                return Err(bad("unreachable nodes"));
            }
            flat.roots.push(offset);
            flat.depth.push(max_depth1 - 1);
            offset += n as u32;
        }
        // Leaf-value gathers only ever use a leaf's own code, and every
        // validated tree contains at least one leaf, so the dictionary
        // is non-empty whenever it is indexed.
        flat.leaf_values = out_dict.values;
        flat.tree_blocks = plan_tree_blocks(forest, crate::kernel::TREE_BLOCK_NODES);
        // QuickScorer tables come last: their explicit-stack tree walks
        // rely on the acyclicity just proven above.
        flat.qs = build_qs_tables(forest);
        Ok(flat)
    }

    /// Total node count across all trees.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Deepest root-to-leaf edge count over all trees (the per-tree
    /// descent iteration count is per-tree, not this maximum).
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize
    }

    /// Total size of the per-feature threshold rank tables (unique
    /// split thresholds, counted per feature).
    pub fn num_thresholds(&self) -> usize {
        self.ft_values.len()
    }

    /// Size of the leaf-value dictionary.
    pub fn num_leaf_values(&self) -> usize {
        self.leaf_values.len()
    }

    /// Content digest of the source forest this layout snapshots.
    pub fn source_digest(&self) -> u64 {
        self.source_digest
    }

    /// Approximate heap footprint of the layout in bytes (node arrays
    /// plus dictionaries) — the number the DESIGN.md performance model
    /// compares against the walker's 40 bytes/node.
    pub fn heap_bytes(&self) -> usize {
        let qs = self.qs.as_ref().map_or(0, |qs| {
            qs.thr.len() * std::mem::size_of::<f64>()
                + qs.ent.len() * std::mem::size_of::<u64>()
                + qs.leaf_value.len() * std::mem::size_of::<f64>()
                + (qs.offsets.len() + qs.leaf_offsets.len() + qs.leaf_depth1.len())
                    * std::mem::size_of::<u32>()
        });
        self.num_nodes() * (std::mem::size_of::<HotNode>() + 2 * std::mem::size_of::<u32>())
            + (self.ft_values.len() + self.leaf_values.len()) * std::mem::size_of::<f64>()
            + self.ft_offsets.len() * std::mem::size_of::<u32>()
            + self.roots.len() * 2 * std::mem::size_of::<u32>()
            + qs
    }
}

/// Greedily pack consecutive trees into blocks of at most
/// `block_nodes` total nodes (a tree larger than the budget gets a
/// block of its own). Iterating rows against one block at a time keeps
/// the block's 16-byte hot records resident across the whole row block.
fn plan_tree_blocks(forest: &Forest, block_nodes: usize) -> Vec<(u32, u32)> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut in_block = 0usize;
    for (ti, tree) in forest.trees.iter().enumerate() {
        let n = tree.nodes.len();
        if in_block > 0 && in_block + n > block_nodes {
            blocks.push((start as u32, ti as u32));
            start = ti;
            in_block = 0;
        }
        in_block += n;
    }
    if in_block > 0 {
        blocks.push((start as u32, forest.trees.len() as u32));
    }
    blocks
}

/// Digest-validated cache of a forest's [`FlatForest`] snapshot.
///
/// Lives as a private field on [`Forest`] so every consumer of
/// [`Forest::predict_batch`] — D*-labeling, `gef-serve`, the bench
/// binaries — shares one layout per model. Validation is by
/// [`Forest::content_digest`]: mutating the model in place (the public
/// tree/score fields stay public) makes the digest diverge and the next
/// batch predict rebuilds instead of reading a stale snapshot. Forests
/// the kernel cannot serve cache the rejection, so the (O(nodes))
/// validation cost is also paid once, not per call.
pub struct LayoutCache {
    /// `(source digest, layout or cached rejection)`.
    slot: RwLock<Option<(u64, Option<Arc<FlatForest>>)>>,
}

impl LayoutCache {
    /// An empty cache (nothing built yet).
    pub fn new() -> LayoutCache {
        LayoutCache {
            slot: RwLock::new(None),
        }
    }

    /// The cached layout for `forest`, building (or re-building, after
    /// an in-place mutation) when the cached digest does not match.
    /// `None` when the forest's structure is unsupported — callers use
    /// the recursive walker instead.
    pub(crate) fn get_or_build(&self, forest: &Forest) -> Option<Arc<FlatForest>> {
        let digest = forest.content_digest();
        if let Ok(guard) = self.slot.read() {
            if let Some((d, cached)) = guard.as_ref() {
                if *d == digest {
                    return cached.clone();
                }
            }
        }
        let built = match FlatForest::build(forest) {
            Ok(flat) => Some(Arc::new(flat)),
            Err(e) => {
                gef_trace::recorder::note(
                    gef_trace::recorder::Kind::Event,
                    "forest.flatten_rejected",
                    &e.to_string(),
                );
                None
            }
        };
        if let Ok(mut guard) = self.slot.write() {
            *guard = Some((digest, built.clone()));
        }
        built
    }

    /// Whether a layout snapshot is currently cached (a cached
    /// *rejection* answers `false`).
    pub fn is_cached(&self) -> bool {
        self.slot
            .read()
            .map(|g| matches!(g.as_ref(), Some((_, Some(_)))))
            .unwrap_or(false)
    }
}

impl Default for LayoutCache {
    fn default() -> Self {
        LayoutCache::new()
    }
}

impl Clone for LayoutCache {
    /// Clones share the cached snapshot (it is immutable); a clone that
    /// later mutates its model re-validates by digest and rebuilds.
    fn clone(&self) -> Self {
        LayoutCache {
            slot: RwLock::new(self.slot.read().map(|g| g.clone()).unwrap_or(None)),
        }
    }
}

impl std::fmt::Debug for LayoutCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.slot.read() {
            Ok(g) => match g.as_ref() {
                Some((_, Some(_))) => "cached",
                Some((_, None)) => "rejected",
                None => "empty",
            },
            Err(_) => "poisoned",
        };
        write!(f, "LayoutCache({state})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, Tree};

    fn two_tree_forest() -> Forest {
        let t0 = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 5.0, 100),
                Node::split(1, 0.25, 3, 4, 2.0, 60),
                Node::leaf(3.0, 40),
                Node::leaf(1.0, 25),
                Node::leaf(2.0, 35),
            ],
        };
        let t1 = Tree {
            nodes: vec![
                Node::split(1, 0.25, 1, 2, 4.0, 100),
                Node::leaf(1.0, 50), // duplicate payload: dictionary folds it
                Node::leaf(-2.0, 50),
            ],
        };
        Forest::new(vec![t0, t1], 0.5, 1.0, Objective::RegressionL2, 2)
    }

    #[test]
    fn build_flattens_and_deduplicates() {
        let forest = two_tree_forest();
        let flat = FlatForest::build(&forest).unwrap();
        assert_eq!(flat.num_nodes(), 8);
        assert_eq!(flat.num_trees(), 2);
        assert_eq!(flat.roots, vec![0, 5]);
        assert_eq!(flat.depth, vec![2, 1]);
        // 0.25 appears in both trees; 0.5 once.
        assert_eq!(flat.num_thresholds(), 2);
        // Leaf payloads 3, 1, 2, -2 (1.0 deduplicated across trees).
        assert_eq!(flat.num_leaf_values(), 4);
        // Leaves self-loop in absolute coordinates.
        assert_eq!(flat.nodes[2].left, 2);
        assert_eq!(flat.nodes[2].right, 2);
        assert_eq!(flat.nodes[6].left, 6);
        // Internal children are absolute.
        assert_eq!(flat.nodes[5].left, 6);
        assert_eq!(flat.nodes[5].right, 7);
        // depth1: root 1, its children 2, grandchildren 3.
        assert_eq!(flat.depth1[0], 1);
        assert_eq!(flat.depth1[3], 3);
        assert_eq!(flat.depth1[5], 1);
        assert_eq!(flat.depth1[7], 2);
        assert_eq!(flat.source_digest(), forest.content_digest());
        assert!(flat.heap_bytes() > 0);
        // 8 nodes fit one tree block.
        assert_eq!(flat.tree_blocks, vec![(0, 2)]);
    }

    #[test]
    fn qs_tables_number_leaves_in_order() {
        let forest = two_tree_forest();
        let flat = FlatForest::build(&forest).unwrap();
        let qs = flat.qs.as_ref().expect("small trees build QS tables");
        // In-order leaf numbering: tree 0 leaves (1.0, 2.0, 3.0) left
        // to right, tree 1 leaves (1.0, -2.0).
        assert_eq!(qs.leaf_offsets, vec![0, 3, 5]);
        assert_eq!(qs.leaf_value, vec![1.0, 2.0, 3.0, 1.0, -2.0]);
        assert_eq!(qs.leaf_depth1, vec![3, 3, 2, 2, 2]);
        // Feature 0 has one entry (tree 0's root, threshold 0.5) whose
        // false-branch clears the left subtree's slots {0, 1}; feature
        // 1 has two (threshold 0.25 in both trees), each clearing its
        // left leaf slot {0}.
        assert_eq!(qs.offsets, vec![0, 1, 3]);
        assert_eq!(qs.thr, vec![0.5, 0.25, 0.25]);
        assert_eq!(qs.ent[0], u64::from(!0b11u32) << 32);
        assert_eq!(qs.ent[1], u64::from(!0b01u32) << 32);
        assert_eq!(qs.ent[2], (u64::from(!0b01u32) << 32) | 1);
    }

    #[test]
    fn qs_tables_absent_for_wide_leaf_trees() {
        // Right-spine chain: 40 splits, 41 leaves > 32.
        let mut nodes = Vec::new();
        for i in 0..40u32 {
            nodes.push(Node::split(
                0,
                i as f64 / 40.0,
                2 * i + 1,
                2 * i + 2,
                1.0,
                41 - i,
            ));
            nodes.push(Node::leaf(i as f64, 1));
        }
        nodes.push(Node::leaf(40.0, 1));
        let forest = Forest::new(vec![Tree { nodes }], 0.0, 1.0, Objective::RegressionL2, 1);
        let flat = FlatForest::build(&forest).unwrap();
        assert!(flat.qs.is_none());
    }

    #[test]
    fn build_rejects_feature_out_of_range() {
        let tree = Tree {
            nodes: vec![
                Node::split(3, 0.5, 1, 2, 0.0, 0), // feature 3, width 2
                Node::leaf(0.0, 0),
                Node::leaf(1.0, 0),
            ],
        };
        let forest = Forest::new(vec![tree], 0.0, 1.0, Objective::RegressionL2, 2);
        assert!(matches!(
            FlatForest::build(&forest),
            Err(ForestError::InvalidData(_))
        ));
    }

    #[test]
    fn build_rejects_cycles_and_dangling_children() {
        let cyclic = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 0.0, 0),
                Node::split(0, 0.5, 0, 2, 0.0, 0),
                Node::leaf(1.0, 0),
            ],
        };
        let forest = Forest::new(vec![cyclic], 0.0, 1.0, Objective::RegressionL2, 1);
        assert!(FlatForest::build(&forest).is_err());

        let dangling = Tree {
            nodes: vec![Node::split(0, 0.5, 1, 9, 0.0, 0), Node::leaf(1.0, 0)],
        };
        let forest = Forest::new(vec![dangling], 0.0, 1.0, Objective::RegressionL2, 1);
        assert!(FlatForest::build(&forest).is_err());
    }

    #[test]
    fn single_leaf_tree_flattens_with_zero_features() {
        let forest = Forest::new(
            vec![Tree::constant(2.5, 10)],
            0.0,
            1.0,
            Objective::RegressionL2,
            0,
        );
        let flat = FlatForest::build(&forest).unwrap();
        assert_eq!(flat.max_depth(), 0);
        assert_eq!(flat.num_leaf_values(), 1);
        // No splits, no rank tables.
        assert_eq!(flat.num_thresholds(), 0);
        assert_eq!(flat.ft_offsets, vec![0]);
    }

    #[test]
    fn cache_rebuilds_after_in_place_mutation() {
        let mut forest = two_tree_forest();
        let a = forest.flattened().expect("valid forest flattens");
        assert!(forest.layout_cached());
        assert!(Arc::ptr_eq(
            &a,
            &forest.flattened().expect("cache hit returns same snapshot")
        ));
        forest.trees[0].nodes[0].threshold = 0.75;
        let b = forest.flattened().expect("rebuild after mutation");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.source_digest(), b.source_digest());
    }

    #[test]
    fn cache_remembers_rejections() {
        let dangling = Tree {
            nodes: vec![Node::split(0, 0.5, 1, 9, 0.0, 0), Node::leaf(1.0, 0)],
        };
        let forest = Forest::new(vec![dangling], 0.0, 1.0, Objective::RegressionL2, 1);
        assert!(forest.flattened().is_none());
        assert!(!forest.layout_cached());
        assert!(forest.flattened().is_none());
    }
}
