//! Histogram-based, leaf-wise gradient-boosted decision trees.
//!
//! This is the workspace's stand-in for LightGBM, mirroring the pieces
//! the GEF paper relies on:
//!
//! * quantile histogram binning (≤ 255 bins, [`crate::binning`]);
//! * **leaf-wise** (best-first) tree growth capped by `num_leaves`, the
//!   growth strategy that makes LightGBM forests deep and asymmetric;
//! * per-node split **gain** and **cover** recorded on every internal
//!   node — GEF's feature selection and interaction heuristics read
//!   these;
//! * shrinkage, L2 leaf regularization, instance bagging, feature
//!   sub-sampling, and validation-based early stopping (the paper uses
//!   25% of the training set with early stopping).
//!
//! The histogram-subtraction trick is implemented: after a split, the
//! histogram of the larger child is derived from `parent − smaller`,
//! halving histogram construction cost.

use crate::binning::BinnedDataset;
use crate::tree::{Node, Tree};
use crate::{sigmoid, Forest, ForestError, Objective, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the GBDT trainer.
///
/// Defaults correspond to the paper's final tuned configuration for the
/// synthetic datasets (1000 trees, 32 leaves, learning rate 0.01) except
/// `num_trees`, which defaults to a lighter 100 — the experiment harness
/// sets the paper values explicitly.
#[derive(Debug, Clone)]
pub struct GbdtParams {
    /// Maximum number of boosting iterations (trees).
    pub num_trees: usize,
    /// Maximum leaves per tree (leaf-wise growth cap).
    pub num_leaves: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// Minimum training instances in each child of a split.
    pub min_data_in_leaf: usize,
    /// L2 regularization on leaf values (LightGBM `lambda_l2`).
    pub lambda_l2: f64,
    /// Minimum split gain to accept a split.
    pub min_gain_to_split: f64,
    /// Fraction of features considered per tree (0 < f <= 1).
    pub feature_fraction: f64,
    /// Fraction of instances bagged per tree (0 < f <= 1).
    pub bagging_fraction: f64,
    /// Training objective.
    pub objective: Objective,
    /// Stop when the validation loss has not improved for this many
    /// rounds (requires a validation set in [`GbdtTrainer::fit_with_valid`]).
    pub early_stopping_rounds: Option<usize>,
    /// RNG seed for bagging / feature sampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            num_trees: 100,
            num_leaves: 32,
            learning_rate: 0.1,
            max_bins: 255,
            min_data_in_leaf: 20,
            lambda_l2: 0.0,
            min_gain_to_split: 1e-10,
            feature_fraction: 1.0,
            bagging_fraction: 1.0,
            objective: Objective::RegressionL2,
            early_stopping_rounds: None,
            seed: 0,
        }
    }
}

impl GbdtParams {
    fn validate(&self) -> Result<()> {
        if self.num_leaves < 2 {
            return Err(ForestError::InvalidParams("num_leaves must be >= 2".into()));
        }
        // `!(x > 0)` deliberately rejects NaN alongside non-positive.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.learning_rate > 0.0) {
            return Err(ForestError::InvalidParams(
                "learning_rate must be > 0".into(),
            ));
        }
        if !(self.feature_fraction > 0.0 && self.feature_fraction <= 1.0) {
            return Err(ForestError::InvalidParams(
                "feature_fraction must be in (0,1]".into(),
            ));
        }
        if !(self.bagging_fraction > 0.0 && self.bagging_fraction <= 1.0) {
            return Err(ForestError::InvalidParams(
                "bagging_fraction must be in (0,1]".into(),
            ));
        }
        if self.lambda_l2 < 0.0 {
            return Err(ForestError::InvalidParams("lambda_l2 must be >= 0".into()));
        }
        Ok(())
    }
}

/// Gradient-boosted decision tree trainer.
#[derive(Debug, Clone)]
pub struct GbdtTrainer {
    params: GbdtParams,
}

/// Best split found for one leaf.
#[derive(Debug, Clone, Copy)]
struct SplitInfo {
    gain: f64,
    feature: usize,
    bin: usize, // split between `bin` and `bin + 1`
    threshold: f64,
}

/// A grow-able leaf during tree construction.
struct LeafState {
    /// Index of this leaf's node in the tree being built.
    node_idx: usize,
    /// Training rows (into the bagged subset) in this leaf.
    rows: Vec<u32>,
    sum_g: f64,
    sum_h: f64,
    /// Flattened per-(feature, bin) histogram: 3 values per bin
    /// (sum_g, sum_h, count).
    hist: Vec<f64>,
    best: Option<SplitInfo>,
}

impl GbdtTrainer {
    /// Create a trainer with the given hyper-parameters.
    pub fn new(params: GbdtParams) -> Self {
        GbdtTrainer { params }
    }

    /// Borrow the hyper-parameters.
    pub fn params(&self) -> &GbdtParams {
        &self.params
    }

    /// Fit on training data only (no early stopping).
    pub fn fit(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Forest> {
        self.fit_impl(xs, ys, None)
    }

    /// Fit with a validation set for early stopping. The returned forest
    /// is truncated to the best validation iteration.
    pub fn fit_with_valid(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        valid_xs: &[Vec<f64>],
        valid_ys: &[f64],
    ) -> Result<Forest> {
        self.fit_impl(xs, ys, Some((valid_xs, valid_ys)))
    }

    fn fit_impl(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        valid: Option<(&[Vec<f64>], &[f64])>,
    ) -> Result<Forest> {
        self.params.validate()?;
        if xs.len() != ys.len() {
            return Err(ForestError::InvalidData(format!(
                "{} rows but {} labels",
                xs.len(),
                ys.len()
            )));
        }
        if xs.is_empty() {
            return Err(ForestError::InvalidData("empty training set".into()));
        }
        if self.params.objective == Objective::BinaryLogistic
            && ys.iter().any(|&y| y != 0.0 && y != 1.0)
        {
            return Err(ForestError::InvalidData(
                "binary objective requires 0/1 labels".into(),
            ));
        }
        let binned = BinnedDataset::build(xs, self.params.max_bins)?;
        let n = xs.len();
        let num_features = binned.num_features();
        let base_score = match self.params.objective {
            Objective::RegressionL2 => ys.iter().sum::<f64>() / n as f64,
            Objective::BinaryLogistic => {
                let p = (ys.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
        };
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut scores = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees: Vec<Tree> = Vec::with_capacity(self.params.num_trees);

        // Validation state for early stopping.
        let mut valid_scores: Vec<f64> = valid
            .map(|(vx, _)| vec![base_score; vx.len()])
            .unwrap_or_default();
        let mut best_loss = f64::INFINITY;
        let mut best_iter = 0usize;

        // Budget cap on boosting rounds (0 = unlimited): a process-wide
        // clamp on top of `num_trees`, recorded when it bites.
        let max_rounds = match gef_trace::budget::boost_round_cap() {
            0 => self.params.num_trees,
            cap => self.params.num_trees.min(cap as usize),
        };
        if max_rounds < self.params.num_trees && gef_trace::enabled() {
            gef_trace::global().event(
                "forest.budget_round_cap",
                &[
                    ("requested", self.params.num_trees as f64),
                    ("capped", max_rounds as f64),
                ],
            );
        }
        let _train_span = gef_trace::Span::enter("forest.train");
        for iter in 0..max_rounds {
            // Per-round cooperative checkpoint: a passed hard deadline
            // aborts training with a typed error instead of finishing
            // the remaining rounds.
            if gef_trace::budget::hard_exceeded() {
                return Err(ForestError::DeadlineExceeded { at: "train" });
            }
            let _round_span = gef_trace::Span::enter("forest.round");
            self.compute_gradients(ys, &scores, &mut grad, &mut hess);
            let bag = self.sample_bag(n, &mut rng);
            let feats = self.sample_features(num_features, &mut rng);
            let tree = self.grow_tree(&binned, &grad, &hess, &bag, &feats)?;
            if tree.num_leaves() < 2 {
                // No useful split anywhere: boosting has converged.
                break;
            }
            // Update train scores using the freshly grown tree.
            for (i, (s, x)) in scores.iter_mut().zip(xs).enumerate() {
                let _ = i;
                *s += tree.predict(x);
            }
            let valid_loss = valid.map(|(vx, vy)| {
                for (s, x) in valid_scores.iter_mut().zip(vx) {
                    *s += tree.predict(x);
                }
                self.eval_loss(vy, &valid_scores)
            });
            if gef_trace::enabled() {
                gef_trace::counter!("forest.trees_grown").incr();
                let mut fields = vec![
                    ("round", (iter + 1) as f64),
                    ("num_leaves", tree.num_leaves() as f64),
                    ("train_loss", self.eval_loss(ys, &scores)),
                ];
                if let Some(vl) = valid_loss {
                    fields.push(("valid_loss", vl));
                }
                gef_trace::global().event("forest.round", &fields);
            }
            trees.push(tree);
            if let Some(loss) = valid_loss {
                if loss < best_loss - 1e-12 {
                    best_loss = loss;
                    best_iter = iter + 1;
                }
                if let Some(rounds) = self.params.early_stopping_rounds {
                    if iter + 1 - best_iter >= rounds {
                        break;
                    }
                }
            }
        }
        if valid.is_some() && self.params.early_stopping_rounds.is_some() {
            trees.truncate(best_iter.max(1));
        }
        Ok(Forest::new(
            trees,
            base_score,
            1.0,
            self.params.objective,
            num_features,
        ))
    }

    /// First/second-order derivatives of the loss w.r.t. raw scores.
    fn compute_gradients(&self, ys: &[f64], scores: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        match self.params.objective {
            Objective::RegressionL2 => {
                for i in 0..ys.len() {
                    grad[i] = scores[i] - ys[i];
                    hess[i] = 1.0;
                }
            }
            Objective::BinaryLogistic => {
                for i in 0..ys.len() {
                    let p = sigmoid(scores[i]);
                    grad[i] = p - ys[i];
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
            }
        }
    }

    /// Mean loss on the response scale (RMSE² for L2, log-loss for binary).
    fn eval_loss(&self, ys: &[f64], scores: &[f64]) -> f64 {
        match self.params.objective {
            Objective::RegressionL2 => {
                ys.iter()
                    .zip(scores)
                    .map(|(y, s)| (y - s) * (y - s))
                    .sum::<f64>()
                    / ys.len() as f64
            }
            Objective::BinaryLogistic => {
                ys.iter()
                    .zip(scores)
                    .map(|(&y, &s)| {
                        let p = sigmoid(s).clamp(1e-12, 1.0 - 1e-12);
                        -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                    })
                    .sum::<f64>()
                    / ys.len() as f64
            }
        }
    }

    fn sample_bag(&self, n: usize, rng: &mut StdRng) -> Vec<u32> {
        if self.params.bagging_fraction >= 1.0 {
            return (0..n as u32).collect();
        }
        let k = ((n as f64 * self.params.bagging_fraction).round() as usize).clamp(1, n);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        idx
    }

    fn sample_features(&self, m: usize, rng: &mut StdRng) -> Vec<usize> {
        if self.params.feature_fraction >= 1.0 {
            return (0..m).collect();
        }
        let k = ((m as f64 * self.params.feature_fraction).round() as usize).clamp(1, m);
        let mut idx: Vec<usize> = (0..m).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }

    /// Grow one tree leaf-wise on the binned dataset. Fallible only
    /// through the parallel dispatch (worker panic / cancellation).
    fn grow_tree(
        &self,
        binned: &BinnedDataset,
        grad: &[f64],
        hess: &[f64],
        bag: &[u32],
        feats: &[usize],
    ) -> Result<Tree> {
        let p = &self.params;
        // Histogram layout: offsets[f] .. offsets[f]+3*num_bins(f).
        let mut offsets = Vec::with_capacity(binned.num_features() + 1);
        let mut acc = 0usize;
        for fb in &binned.features {
            offsets.push(acc);
            acc += 3 * fb.num_bins();
        }
        offsets.push(acc);
        let hist_len = acc;
        // Telemetry: split the tree-growth cost into its two halves
        // (histogram construction vs split-candidate scanning). The
        // accumulators stay thread-local to this call and are flushed
        // once per tree, so the hot loops see no atomics.
        let traced = gef_trace::enabled();
        let mut hist_ns = 0u64;
        let mut split_ns = 0u64;

        let mut tree = Tree {
            nodes: vec![Node::leaf(0.0, bag.len() as u32)],
        };
        let (root_g, root_h) = bag.iter().fold((0.0, 0.0), |(g, h), &i| {
            (g + grad[i as usize], h + hess[i as usize])
        });
        let mut root = LeafState {
            node_idx: 0,
            rows: bag.to_vec(),
            sum_g: root_g,
            sum_h: root_h,
            hist: vec![0.0; hist_len],
            best: None,
        };
        timed(traced, &mut hist_ns, || {
            build_hist(
                binned,
                grad,
                hess,
                &root.rows,
                &mut root.hist,
                &offsets,
                feats,
            )
        })?;
        root.best = timed(traced, &mut split_ns, || {
            self.find_best_split(binned, &root, &offsets, feats)
        })?;
        let mut leaves: Vec<LeafState> = vec![root];

        while leaves.len() < p.num_leaves {
            // Pick the splittable leaf with the largest gain.
            let Some((li, split)) = leaves
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.best.map(|b| (i, b)))
                .max_by(|a, b| a.1.gain.total_cmp(&b.1.gain))
            else {
                break;
            };
            let leaf = leaves.swap_remove(li);

            // Partition rows on the chosen bin.
            let fbins = &binned.bins[split.feature];
            let mut left_rows = Vec::with_capacity(leaf.rows.len() / 2);
            let mut right_rows = Vec::with_capacity(leaf.rows.len() / 2);
            for &r in &leaf.rows {
                if (fbins[r as usize] as usize) <= split.bin {
                    left_rows.push(r);
                } else {
                    right_rows.push(r);
                }
            }
            debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

            // Histogram subtraction: build the smaller child, derive the
            // larger from the parent.
            let build_left_small = left_rows.len() <= right_rows.len();
            let mut small_hist = vec![0.0; hist_len];
            let small_rows = if build_left_small {
                &left_rows
            } else {
                &right_rows
            };
            timed(traced, &mut hist_ns, || {
                build_hist(
                    binned,
                    grad,
                    hess,
                    small_rows,
                    &mut small_hist,
                    &offsets,
                    feats,
                )
            })?;
            let mut large_hist = leaf.hist; // reuse parent allocation
            for (lh, &sh) in large_hist.iter_mut().zip(&small_hist) {
                *lh -= sh;
            }
            let (left_hist, right_hist) = if build_left_small {
                (small_hist, large_hist)
            } else {
                (large_hist, small_hist)
            };

            // Materialize the split in the tree.
            let left_node = tree.nodes.len() as u32;
            let right_node = left_node + 1;
            let (lg, lh2): (f64, f64) = left_rows.iter().fold((0.0, 0.0), |(g, h), &i| {
                (g + grad[i as usize], h + hess[i as usize])
            });
            let (rg, rh2) = (leaf.sum_g - lg, leaf.sum_h - lh2);
            tree.nodes.push(Node::leaf(0.0, left_rows.len() as u32));
            tree.nodes.push(Node::leaf(0.0, right_rows.len() as u32));
            let parent = &mut tree.nodes[leaf.node_idx];
            parent.feature = split.feature as i32;
            parent.threshold = split.threshold;
            parent.left = left_node;
            parent.right = right_node;
            parent.gain = split.gain;

            let mut left_leaf = LeafState {
                node_idx: left_node as usize,
                rows: left_rows,
                sum_g: lg,
                sum_h: lh2,
                hist: left_hist,
                best: None,
            };
            let mut right_leaf = LeafState {
                node_idx: right_node as usize,
                rows: right_rows,
                sum_g: rg,
                sum_h: rh2,
                hist: right_hist,
                best: None,
            };
            left_leaf.best = timed(traced, &mut split_ns, || {
                self.find_best_split(binned, &left_leaf, &offsets, feats)
            })?;
            right_leaf.best = timed(traced, &mut split_ns, || {
                self.find_best_split(binned, &right_leaf, &offsets, feats)
            })?;
            leaves.push(left_leaf);
            leaves.push(right_leaf);
        }
        if traced {
            gef_trace::global().record_value("forest.hist_build_ns", hist_ns);
            gef_trace::global().record_value("forest.split_search_ns", split_ns);
        }

        // Finalize leaf values with shrinkage.
        for leaf in &leaves {
            let node = &mut tree.nodes[leaf.node_idx];
            debug_assert!(node.is_leaf());
            node.value = -p.learning_rate * leaf.sum_g / (leaf.sum_h + p.lambda_l2);
        }
        Ok(tree)
    }

    /// Best split over all (feature, bin) candidates of a leaf's
    /// histogram.
    ///
    /// Dispatches the scan over ascending feature chunks on the gef-par
    /// pool when the leaf has enough candidate bins to amortize it. The
    /// parallel result is bit-identical to the serial scan: chunk
    /// boundaries are fixed by `feats.len()` alone and [`better_split`]
    /// folds chunk winners left-to-right keeping the earlier (lower
    /// feature index) candidate on exact gain ties — the same
    /// first-best rule the serial loop applies.
    fn find_best_split(
        &self,
        binned: &BinnedDataset,
        leaf: &LeafState,
        offsets: &[usize],
        feats: &[usize],
    ) -> Result<Option<SplitInfo>> {
        if leaf.rows.len() < 2 * self.params.min_data_in_leaf {
            return Ok(None);
        }
        let total_bins: usize = feats.iter().map(|&f| binned.features[f].num_bins()).sum();
        if total_bins < SPLIT_PAR_MIN_BINS || gef_par::threads() <= 1 {
            return Ok(self.scan_split_candidates(binned, leaf, offsets, feats));
        }
        Ok(gef_par::map_reduce(
            feats.len(),
            gef_par::Options::default().with_label("forest.split_search"),
            |r| self.scan_split_candidates(binned, leaf, offsets, &feats[r]),
            better_split,
        )?
        .flatten())
    }

    /// Serial scan of a contiguous run of the leaf's candidate features
    /// (first-best kept on gain ties).
    fn scan_split_candidates(
        &self,
        binned: &BinnedDataset,
        leaf: &LeafState,
        offsets: &[usize],
        feats: &[usize],
    ) -> Option<SplitInfo> {
        let p = &self.params;
        let lam = p.lambda_l2;
        let parent_score = leaf.sum_g * leaf.sum_g / (leaf.sum_h + lam);
        let total_count = leaf.rows.len() as f64;
        let mut best: Option<SplitInfo> = None;
        for &f in feats {
            let nb = binned.features[f].num_bins();
            if nb < 2 {
                continue;
            }
            let base = offsets[f];
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut cl = 0.0;
            // Split candidates sit between bin b and b+1 for b in 0..nb-1.
            for b in 0..nb - 1 {
                gl += leaf.hist[base + 3 * b];
                hl += leaf.hist[base + 3 * b + 1];
                cl += leaf.hist[base + 3 * b + 2];
                let cr = total_count - cl;
                if (cl as usize) < p.min_data_in_leaf {
                    continue;
                }
                if (cr as usize) < p.min_data_in_leaf {
                    break;
                }
                let gr = leaf.sum_g - gl;
                let hr = leaf.sum_h - hl;
                let gain = 0.5 * (gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score);
                if gain > p.min_gain_to_split && best.is_none_or(|bst| gain > bst.gain) {
                    best = Some(SplitInfo {
                        gain,
                        feature: f,
                        bin: b,
                        threshold: binned.features[f].uppers[b],
                    });
                }
            }
        }
        best
    }
}

/// Run `f`, adding its wall time to `acc` when `traced` is set.
#[inline]
fn timed<T>(traced: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if traced {
        let t = std::time::Instant::now();
        let out = f();
        *acc += t.elapsed().as_nanos() as u64;
        out
    } else {
        f()
    }
}

/// Minimum `rows × features` work for a histogram build to dispatch to
/// the gef-par pool. A latency threshold only — it never changes values.
const HIST_PAR_MIN_WORK: usize = 1 << 14;

/// Minimum total candidate bins for a split search to dispatch to the
/// gef-par pool.
const SPLIT_PAR_MIN_BINS: usize = 1 << 12;

/// Ordered combiner for chunk-local split winners: the later candidate
/// replaces only on *strictly* greater gain, so folding ascending
/// feature chunks left-to-right keeps the lowest-feature-index winner
/// on exact ties — identical to the serial first-best scan.
fn better_split(a: Option<SplitInfo>, b: Option<SplitInfo>) -> Option<SplitInfo> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.gain > x.gain { y } else { x }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Accumulate (sum_g, sum_h, count) histograms for the given rows.
///
/// Dispatches over feature chunks on the gef-par pool when the
/// `rows × features` work is large enough. Each chunk owns a disjoint
/// `&mut` region of `hist` (features are ascending, so the regions are
/// carved with `split_at_mut`) and accumulates its slots in the same
/// row order as the serial loop — the parallel build is bit-identical.
fn build_hist(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    rows: &[u32],
    hist: &mut [f64],
    offsets: &[usize],
    feats: &[usize],
) -> Result<()> {
    if rows.len().saturating_mul(feats.len()) < HIST_PAR_MIN_WORK || gef_par::threads() <= 1 {
        build_hist_serial(binned, grad, hess, rows, hist, offsets, feats);
        return Ok(());
    }
    // One task per fixed chunk of the (ascending) sampled features. A
    // chunk's histogram region spans from its first feature's offset to
    // the end of its last feature's block; gaps from unsampled features
    // inside a region are simply never written.
    let ranges = gef_par::chunk_ranges(feats.len());
    let mut tasks: Vec<(&[usize], usize, &mut [f64])> = Vec::with_capacity(ranges.len());
    let mut rest = hist;
    let mut cursor = 0usize;
    for r in &ranges {
        let lo = offsets[feats[r.start]];
        let hi = offsets[feats[r.end - 1] + 1];
        let (_, tail) = rest.split_at_mut(lo - cursor);
        let (region, tail) = tail.split_at_mut(hi - lo);
        rest = tail;
        cursor = hi;
        tasks.push((&feats[r.clone()], lo, region));
    }
    gef_par::for_each_task(
        tasks,
        gef_par::Options::default().with_label("forest.hist_build"),
        |_, (chunk_feats, region_start, region)| {
            for &f in chunk_feats {
                let base = offsets[f] - region_start;
                let fbins = &binned.bins[f];
                for &r in rows {
                    let i = r as usize;
                    let slot = base + 3 * fbins[i] as usize;
                    region[slot] += grad[i];
                    region[slot + 1] += hess[i];
                    region[slot + 2] += 1.0;
                }
            }
        },
    )?;
    Ok(())
}

fn build_hist_serial(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    rows: &[u32],
    hist: &mut [f64],
    offsets: &[usize],
    feats: &[usize],
) {
    for &f in feats {
        let base = offsets[f];
        let fbins = &binned.bins[f];
        for &r in rows {
            let i = r as usize;
            let slot = base + 3 * fbins[i] as usize;
            hist[slot] += grad[i];
            hist[slot + 1] += hess[i];
            hist[slot + 2] += 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy(n: usize, f: impl Fn(&[f64]) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Deterministic pseudo-random 2-D inputs.
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next()]).collect();
        let ys = xs.iter().map(|x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_linear_function() {
        let (xs, ys) = grid_xy(500, |x| 2.0 * x[0] - 1.0 * x[1]);
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 150,
            num_leaves: 16,
            learning_rate: 0.1,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let rmse: f64 = (xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (f.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        assert!(rmse < 0.05, "rmse={rmse}");
    }

    #[test]
    fn fits_step_function_exactly_enough() {
        let (xs, ys) = grid_xy(400, |x| if x[0] > 0.5 { 1.0 } else { -1.0 });
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 30,
            num_leaves: 4,
            learning_rate: 0.3,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        assert!((f.predict(&[0.25, 0.5]) + 1.0).abs() < 0.05);
        assert!((f.predict(&[0.75, 0.5]) - 1.0).abs() < 0.05);
    }

    #[test]
    fn tree_structure_is_valid_with_consistent_counts() {
        let (xs, ys) = grid_xy(300, |x| x[0] * x[1]);
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 10,
            num_leaves: 8,
            min_data_in_leaf: 10,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        assert!(!f.trees.is_empty());
        for t in &f.trees {
            t.validate().expect("valid tree");
            assert!(t.num_leaves() <= 8);
            // Root count covers the whole (unbagged) training set.
            assert_eq!(t.nodes[0].count, 300);
        }
    }

    #[test]
    fn gain_is_positive_on_internal_nodes() {
        let (xs, ys) = grid_xy(300, |x| (x[0] * 6.0).sin());
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 5,
            num_leaves: 8,
            min_data_in_leaf: 10,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        for t in &f.trees {
            for i in t.internal_nodes() {
                assert!(t.nodes[i].gain > 0.0);
            }
        }
    }

    #[test]
    fn binary_objective_learns_separator() {
        let (xs, ys) = grid_xy(600, |x| if x[0] + x[1] > 1.0 { 1.0 } else { 0.0 });
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 60,
            num_leaves: 8,
            learning_rate: 0.2,
            min_data_in_leaf: 10,
            objective: Objective::BinaryLogistic,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        assert!(f.predict_proba(&[0.9, 0.9]) > 0.9);
        assert!(f.predict_proba(&[0.1, 0.1]) < 0.1);
        // predict() matches predict_proba() for classification.
        assert_eq!(f.predict(&[0.9, 0.9]), f.predict_proba(&[0.9, 0.9]));
    }

    #[test]
    fn early_stopping_truncates() {
        let (xs, ys) = grid_xy(400, |x| 2.0 * x[0]);
        let (vx, vy) = grid_xy(100, |x| 2.0 * x[0]);
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 500,
            num_leaves: 4,
            learning_rate: 0.3,
            min_data_in_leaf: 5,
            early_stopping_rounds: Some(10),
            ..Default::default()
        })
        .fit_with_valid(&xs, &ys, &vx, &vy)
        .unwrap();
        assert!(f.trees.len() < 500, "early stopping never kicked in");
        assert!(!f.trees.is_empty());
    }

    #[test]
    fn bagging_and_feature_fraction_still_learn() {
        let (xs, ys) = grid_xy(500, |x| x[0] - x[1]);
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 100,
            num_leaves: 8,
            learning_rate: 0.1,
            min_data_in_leaf: 5,
            bagging_fraction: 0.7,
            feature_fraction: 0.5,
            seed: 3,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let rmse: f64 = (xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (f.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        assert!(rmse < 0.15, "rmse={rmse}");
    }

    #[test]
    fn constant_labels_yield_base_score_only() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 100];
        let f = GbdtTrainer::new(GbdtParams::default())
            .fit(&xs, &ys)
            .unwrap();
        assert!(f.trees.is_empty());
        assert_eq!(f.predict(&[42.0]), 5.0);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let t = GbdtTrainer::new(GbdtParams::default());
        assert!(t.fit(&[], &[]).is_err());
        assert!(t.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        let bad = GbdtTrainer::new(GbdtParams {
            num_leaves: 1,
            ..Default::default()
        });
        assert!(bad.fit(&[vec![1.0]], &[1.0]).is_err());
        // Non-binary labels with logistic objective.
        let t = GbdtTrainer::new(GbdtParams {
            objective: Objective::BinaryLogistic,
            ..Default::default()
        });
        assert!(t.fit(&[vec![1.0], vec![2.0]], &[0.5, 1.0]).is_err());
    }

    #[test]
    fn lambda_l2_shrinks_leaf_values() {
        let (xs, ys) = grid_xy(300, |x| 5.0 * x[0]);
        let fit_with = |lambda_l2: f64| {
            GbdtTrainer::new(GbdtParams {
                num_trees: 3,
                num_leaves: 8,
                learning_rate: 1.0,
                min_data_in_leaf: 5,
                lambda_l2,
                ..Default::default()
            })
            .fit(&xs, &ys)
            .unwrap()
        };
        let plain = fit_with(0.0);
        let ridge = fit_with(100.0);
        let max_leaf = |f: &Forest| {
            f.trees
                .iter()
                .flat_map(|t| t.nodes.iter())
                .filter(|n| n.is_leaf())
                .map(|n| n.value.abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_leaf(&ridge) < max_leaf(&plain));
    }

    #[test]
    fn min_gain_to_split_prunes() {
        let (xs, ys) = grid_xy(300, |x| x[0]);
        let loose = GbdtTrainer::new(GbdtParams {
            num_trees: 1,
            num_leaves: 16,
            min_data_in_leaf: 5,
            min_gain_to_split: 1e-10,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let strict = GbdtTrainer::new(GbdtParams {
            num_trees: 1,
            num_leaves: 16,
            min_data_in_leaf: 5,
            min_gain_to_split: 1e3,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let leaves = |f: &Forest| f.trees.first().map_or(0, |t| t.num_leaves());
        assert!(leaves(&strict) <= leaves(&loose));
    }

    #[test]
    fn max_bins_two_still_learns_step() {
        let (xs, ys) = grid_xy(200, |x| f64::from(x[0] > 0.5));
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 20,
            num_leaves: 4,
            learning_rate: 0.5,
            min_data_in_leaf: 5,
            max_bins: 2,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        // Only one candidate threshold per feature, but boosting still
        // separates the halves.
        assert!(f.predict(&[0.9, 0.5]) > 0.6);
        assert!(f.predict(&[0.1, 0.5]) < 0.4);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = grid_xy(200, |x| x[0]);
        let p = GbdtParams {
            num_trees: 20,
            bagging_fraction: 0.8,
            feature_fraction: 1.0,
            min_data_in_leaf: 5,
            seed: 11,
            ..Default::default()
        };
        let f1 = GbdtTrainer::new(p.clone()).fit(&xs, &ys).unwrap();
        let f2 = GbdtTrainer::new(p).fit(&xs, &ys).unwrap();
        assert_eq!(f1.predict(&[0.37, 0.91]), f2.predict(&[0.37, 0.91]));
    }
}
