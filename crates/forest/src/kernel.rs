//! Branchless batch-inference kernel over the flattened
//! [`FlatForest`] layout.
//!
//! The walker ([`crate::Tree::predict`]) descends one row through one
//! tree at a time: every level is a data-dependent branch (`x <= t`,
//! ~50/50 and unpredictable by construction — good splits maximize
//! information) followed by a dependent pointer chase. The kernel
//! replaces that with one of two branch-free schedules, chosen once
//! per forest at layout-build time:
//!
//! - **QuickScorer bitvector scoring** (primary) when every tree has
//!   ≤ 32 leaves — the paper configuration trains exactly 32-leaf
//!   trees, so this is the path the D*-labeling workload rides.
//! - **Rank-quantized predicated descent** (fallback) for forests
//!   with at least one wider tree.
//!
//! Both produce bit-identical `f64` output to the walker; the
//! differential-oracle suite (`tests/kernel_oracle.rs`) pins each path
//! separately.
//!
//! ## QuickScorer bitvector scoring
//!
//! The restructuring of Lucchese et al. (SIGIR'15), by the same group
//! as the GEF paper, turned inside-out: instead of asking "which path
//! does this row take?", ask "which leaves does this row *rule out*?"
//!
//! Per tree, a `u32` bitvector holds one bit per leaf in left-to-right
//! (in-order) order, initialized all-ones. An internal node whose
//! condition `x[f] <= t` is FALSE rules out every leaf of its *left*
//! subtree — a contiguous bit span under in-order numbering, cleared
//! with one precomputed AND-mask. After all false conditions are
//! applied, the exit leaf is the lowest surviving bit
//! (`trailing_zeros`). The crucial inversion: grouping the masks *by
//! feature* and sorting each group by threshold makes the set of false
//! conditions for feature `f` exactly the prefix of that group with
//! `t < x[f]` — found by the same branchless `rank` binary search
//! the descent path uses (NaN ranks past every threshold, so NaN
//! applies the whole group and routes right, like the walker). The
//! per-tree work collapses to "AND a few masks", with no per-node
//! traversal at all.
//!
//! Mask application is lane-parallel: sub-blocks of [`QS_SUB`] rows
//! share one walk of each feature's entry stream, bitvectors stored
//! tree-major (`bv[t·QS_SUB + lane]`) so one entry's lanes are
//! contiguous. The stream is walked to the *maximum* cutoff of the
//! sub-block — lanes past their own cutoff AND the all-ones identity —
//! which visits ~8× fewer entries than per-lane walks on the paper
//! forest. On x86-64 with AVX2 (runtime-detected; the build stays
//! baseline x86-64) the 16 lanes are two 256-bit vectors: broadcast
//! mask, compare-gt of lane cutoffs against the entry counter, blend
//! with identity, AND — `qs_apply_avx2`. Elsewhere a row-major
//! scalar loop (`qs_apply_scalar`) applies each lane's own prefix.
//! Finalize reads slot-aligned leaf payloads (`leaf_value`,
//! `leaf_depth1` in the layout's QS tables) indexed directly by
//! `trailing_zeros` — no node→code→dictionary gather chain.
//!
//! ## Rank-quantized predicated descent (wide-tree fallback)
//!
//! Restructures the walker's computation four ways:
//!
//! 1. **Rank quantization + mask select** — each row's feature values
//!    are ranked once per block against the per-feature threshold
//!    tables (see [`crate::layout`]), so a descent step is two loads
//!    (packed 16-byte node record, one u32 rank) and a mask select —
//!    no branch, no `f64` threshold gather, no row-pointer chase:
//!    ```text
//!    c    = xr[r·nf + feat]                   // precomputed rank of x
//!    m    = ((c <= rank) as u32).wrapping_neg() // all-ones / all-zeros
//!    next = (left & m) | (right & !m)
//!    ```
//!    `rank(x) <= rank(t)  ⟺  x <= t` for the finite thresholds the
//!    layout admits, NaN ranks `u32::MAX` (compares false, routes
//!    right), and a misprediction never flushes the pipeline.
//! 2. **Level-synchronous row blocks** — [`ROW_BLOCK`] rows descend one
//!    tree *together*, one level per pass over the block. Each row's
//!    chain of dependent loads is independent of its neighbours', so
//!    the out-of-order core overlaps ~[`ROW_BLOCK`] cache misses
//!    instead of stalling on one, and the fixed-trip inner loop unrolls
//!    with no cross-row state. Leaves self-loop (see [`crate::layout`]),
//!    so no row needs a per-row `is_leaf` branch: a parked row cheaply
//!    recomputes `next == i`. (A compacting active-list variant — pay
//!    only `Σ leaf_depth` steps instead of marching parked rows — was
//!    measured *slower* here: the serial append counter and pair
//!    traffic cost more ILP than the skipped steps bought.)
//! 3. **Deepest-reached early exit** — leaf-wise trees are deeply
//!    imbalanced (max depth ~2.5× the mean leaf depth on the paper
//!    forest), so one XOR+OR per row folds "did any row move this
//!    pass" into a register and the tree exits after the block's
//!    deepest *reached* leaf rather than the tree's max depth. Pass 0
//!    is additionally fused: all rows sit at the root, so the root
//!    record is loaded once outside the loop.
//! 4. **Tree blocks** — trees are pre-grouped (at build time, in
//!    [`FlatForest`]) into runs of ≤ [`TREE_BLOCK_NODES`] nodes, ~64 KiB
//!    of 16-byte hot records. All rows of a block traverse one tree
//!    block before the next is touched, so each block's nodes are
//!    pulled through the cache once per [`ROW_BLOCK`] rows instead of
//!    once per row.
//!
//! ## Determinism
//!
//! Neither path reorders arithmetic. Mask application is pure integer
//! work (order-independent by commutativity of `&`), and each row
//! keeps a private `f64` accumulator folded in global tree order —
//! descent visits tree blocks and trees within a block in order, QS
//! finalize reads each row's surviving leaf tree by tree — so both
//! compute `((0.0 + t0(x)) + t1(x)) + …`, the exact fold of the
//! walker's `trees.iter().map(..).sum::<f64>()`, then
//! `base + scale * Σ` and the objective transform, in that order. The
//! AVX2 and scalar mask loops produce identical bitvectors, so SIMD
//! dispatch never changes output either. Rows are embarrassingly
//! parallel, so gef-par's fixed [`gef_par::chunk_ranges`] boundaries
//! (a pure function of the batch length) only decide *which worker*
//! computes a row, never *how*. Predictions are therefore bit-identical
//! to the recursive walker at any thread count — the property the
//! differential-oracle suite (`tests/kernel_oracle.rs`) asserts.
//!
//! ## Safety
//!
//! The hot loops use unchecked indexing. Every index is closed over by
//! [`FlatForest::build`]'s validation: child indices stay inside the
//! node arrays (self-loops included), leaf-value dictionary codes are
//! dense by construction, and internal features are `< num_features`,
//! which each entry point asserts against every row's length before
//! ranking — so `r·nf + feat` stays inside the per-block rank table.
//! On the QS path, rank results are clamped to each feature's entry
//! count before use as cutoffs, entry `tree` halves index the
//! `trees`-sized bitvector array they were built from, and the exit
//! slot is clamped to `leaf_count − 1` before the slot-aligned payload
//! gather — each tree keeps ≥ 1 surviving leaf by the QuickScorer
//! exit-leaf theorem, and the clamp makes the gather in-bounds even
//! without it.

use crate::layout::{FlatForest, QsTables};

/// Rows descending one tree together. 64 rows × (4 B state + 8 B
/// pointer + 8 B accumulator) of per-row descent state stays in
/// registers/L1 while giving the core ~64 independent load chains.
pub const ROW_BLOCK: usize = 64;

/// Tree-block budget in nodes: 4096 × 16 B hot record ≈ 64 KiB,
/// sized to overflow L1 but sit comfortably in L2 while the row block
/// re-walks it.
pub const TREE_BLOCK_NODES: usize = 4096;

/// Raw margin predictions (`base + scale · Σ trees`, no objective
/// transform) for every row of `xs`.
///
/// Infallible and serial: cooperative deadline checks and gef-par
/// dispatch live in [`crate::Forest::predict_batch`], which calls the
/// chunked variants directly.
///
/// # Panics
/// If any row is shorter than the layout's `num_features`, matching the
/// walker's out-of-bounds panic on short rows.
///
/// ```
/// use gef_forest::{kernel, Forest, Node, Objective, Tree};
///
/// let tree = Tree {
///     nodes: vec![
///         Node::split(0, 0.5, 1, 2, 1.0, 4),
///         Node::leaf(-1.0, 2),
///         Node::leaf(1.0, 2),
///     ],
/// };
/// let forest = Forest::new(vec![tree], 0.25, 1.0, Objective::RegressionL2, 1);
/// let flat = forest.flattened().expect("valid forest flattens");
/// let xs = vec![vec![0.2], vec![0.8]];
/// let raw = kernel::predict_raw(&flat, &xs);
/// assert_eq!(raw, vec![-0.75, 1.25]);
/// // Bitwise-identical to the recursive walker:
/// assert_eq!(raw[0], forest.predict_raw(&xs[0]));
/// ```
pub fn predict_raw(flat: &FlatForest, xs: &[Vec<f64>]) -> Vec<f64> {
    let mut out = vec![0.0; xs.len()];
    raw_chunk(flat, xs, 0, &mut out);
    out
}

/// Response-scale predictions (raw margin through the objective's
/// inverse link) for every row of `xs`. Serial and infallible; the
/// deadline-aware, pool-dispatched path is [`crate::Forest::predict_batch`].
///
/// ```
/// use gef_forest::{kernel, Forest, Node, Objective, Tree};
///
/// let tree = Tree {
///     nodes: vec![
///         Node::split(0, 0.5, 1, 2, 1.0, 4),
///         Node::leaf(-2.0, 2),
///         Node::leaf(2.0, 2),
///     ],
/// };
/// let forest = Forest::new(vec![tree], 0.0, 1.0, Objective::BinaryLogistic, 1);
/// let flat = forest.flattened().expect("valid forest flattens");
/// let probs = kernel::predict_response(&flat, &[vec![0.9]]);
/// assert_eq!(probs[0], forest.predict(&[0.9])); // sigmoid(2), bit-exact
/// ```
pub fn predict_response(flat: &FlatForest, xs: &[Vec<f64>]) -> Vec<f64> {
    let mut out = vec![0.0; xs.len()];
    response_chunk(flat, xs, 0, &mut out);
    out
}

/// Response-scale predictions plus the total node-visit count the
/// walker would have reported (`forest.nodes_visited` telemetry).
///
/// The kernel's fixed-depth descent does not count during traversal;
/// the walker's per-row visit total is recovered exactly as the final
/// leaf's stored root-to-leaf path length (`depth1`).
pub fn predict_response_counted(flat: &FlatForest, xs: &[Vec<f64>]) -> (Vec<f64>, u64) {
    let mut out = vec![0.0; xs.len()];
    let visited = counted_chunk(flat, xs, 0, &mut out);
    (out, visited)
}

/// Raw-margin kernel over one output chunk: `out[k]` receives the
/// prediction for row `xs[start + k]`.
pub(crate) fn raw_chunk(flat: &FlatForest, xs: &[Vec<f64>], start: usize, out: &mut [f64]) {
    chunk_impl::<false, false>(flat, xs, start, out);
}

/// Response-scale kernel over one output chunk.
pub(crate) fn response_chunk(flat: &FlatForest, xs: &[Vec<f64>], start: usize, out: &mut [f64]) {
    chunk_impl::<true, false>(flat, xs, start, out);
}

/// Response-scale kernel over one output chunk, returning the chunk's
/// walker-equivalent node-visit count.
pub(crate) fn counted_chunk(
    flat: &FlatForest,
    xs: &[Vec<f64>],
    start: usize,
    out: &mut [f64],
) -> u64 {
    chunk_impl::<true, true>(flat, xs, start, out)
}

/// Rank of `x` in a sorted threshold table: `#{t : t < x}`, so
/// `rank(x) <= rank(t)  ⟺  x <= t` (see [`crate::layout`] for the
/// proof obligations). NaN ranks `u32::MAX`: it compares false against
/// every node rank and routes right, like the walker's `x <= t`.
///
/// Branchless binary search — the compare folds to a conditional move,
/// because a data-dependent branch here would mispredict ~50% per probe
/// on the paper workload's near-uniform feature draws.
#[inline]
fn rank(table: &[f64], x: f64) -> u32 {
    if x.is_nan() {
        return u32::MAX;
    }
    let mut base = 0usize;
    let mut n = table.len();
    while n > 1 {
        let half = n / 2;
        // SAFETY: base + half - 1 < base + n <= table.len() holds on
        // entry and is preserved: base grows by half only as n shrinks
        // by half.
        let probe = unsafe { *table.get_unchecked(base + half - 1) };
        base += if probe < x { half } else { 0 };
        n -= half;
    }
    let last = table.get(base).is_some_and(|&t| t < x);
    (base + usize::from(last)) as u32
}

/// The blocked descent. `TRANSFORM` applies the objective's inverse
/// link; `COUNTED` accumulates walker-equivalent node visits (constant
/// generics so the two cold features cost nothing when off).
fn chunk_impl<const TRANSFORM: bool, const COUNTED: bool>(
    flat: &FlatForest,
    xs: &[Vec<f64>],
    start: usize,
    out: &mut [f64],
) -> u64 {
    // Forests whose trees all fit a 64-bit leaf mask (the paper trains
    // 32-leaf trees) take the QuickScorer bitvector path: streaming
    // mask ANDs instead of per-node descent. Wider trees descend.
    if let Some(qs) = flat.qs.as_ref() {
        return qs_impl::<TRANSFORM, COUNTED>(flat, qs, xs, start, out);
    }
    let nf = flat.num_features;
    let mut visited = 0u64;
    // Per-block feature-rank table: xr[r * nf + f] is the rank of row
    // r's feature f among that feature's split thresholds (u32::MAX for
    // NaN, which therefore compares false against every node rank and
    // routes right — the walker's NaN behaviour). One allocation per
    // chunk, refilled per block.
    let mut xr = vec![0u32; ROW_BLOCK * nf];
    let mut block_start = 0usize;
    while block_start < out.len() {
        let bn = ROW_BLOCK.min(out.len() - block_start);
        let rows = &xs[start + block_start..start + block_start + bn];
        for row in rows {
            assert!(
                row.len() >= nf,
                "feature row has {} values, forest expects {nf}",
                row.len()
            );
        }
        // Rank every row's feature values once; each descent step below
        // is then a pure u32 compare with no f64 gather. Feature-major
        // so each table is searched while hot.
        for f in 0..nf {
            let lo = flat.ft_offsets[f] as usize;
            let hi = flat.ft_offsets[f + 1] as usize;
            let table = &flat.ft_values[lo..hi];
            for (r, row) in rows.iter().enumerate() {
                xr[r * nf + f] = rank(table, row[f]);
            }
        }

        let mut acc = [0.0f64; ROW_BLOCK];
        let mut idx = [0u32; ROW_BLOCK];
        for &(t0, t1) in &flat.tree_blocks {
            for t in t0 as usize..t1 as usize {
                let root = flat.roots[t];
                let levels = flat.depth[t] as usize;
                // Single-leaf trees (levels == 0) skip descent: every
                // row is already parked at the root, and skipping also
                // keeps the level passes from touching the leaf's dummy
                // `feat = 0` — with an all-leaf forest nf may be 0 and
                // the rows zero-width. (Any tree with a split forces
                // nf >= 1, so reading a leaf's feature 0 in a level
                // pass below is always in bounds.)
                if levels == 0 {
                    idx[..bn].fill(root);
                } else {
                    // Pass 0 is fused: every row starts at the root, so
                    // the root record is loaded once, outside the loop.
                    // SAFETY: root is a validated in-range node; r < bn
                    // and feat < nf bound the reads/writes exactly as
                    // in the main pass below.
                    let rn = unsafe { *flat.nodes.get_unchecked(root as usize) };
                    for r in 0..bn {
                        unsafe {
                            let c = *xr.get_unchecked(r * nf + rn.feat as usize);
                            let m = u32::wrapping_neg(u32::from(c <= rn.thr_code));
                            *idx.get_unchecked_mut(r) = (rn.left & m) | (rn.right & !m);
                        }
                    }
                    // Level-synchronous passes over the whole block:
                    // every iteration is independent (no cross-row
                    // state), so LLVM unrolls freely and the core
                    // overlaps ~bn dependent-load chains. Parked rows
                    // recompute their self-loop; one XOR+OR per row
                    // folds "did anyone move" into a register so the
                    // tree exits after its deepest *reached* leaf, not
                    // its max depth.
                    for _ in 1..levels {
                        let mut moved = 0u32;
                        for r in 0..bn {
                            // SAFETY: idx holds validated node indices
                            // (children stay in-range, leaves
                            // self-loop); node ranks compare against xr
                            // entries at r·nf + feat < bn·nf (feat < nf
                            // by layout validation).
                            unsafe {
                                let i = *idx.get_unchecked(r);
                                let node = *flat.nodes.get_unchecked(i as usize);
                                let c = *xr.get_unchecked(r * nf + node.feat as usize);
                                // NaN ranks u32::MAX -> compares false
                                // -> mask 0 -> right, matching the
                                // walker's `x <= t`.
                                let m = u32::wrapping_neg(u32::from(c <= node.thr_code));
                                let next = (node.left & m) | (node.right & !m);
                                moved |= next ^ i;
                                *idx.get_unchecked_mut(r) = next;
                            }
                        }
                        if moved == 0 {
                            break;
                        }
                    }
                }
                for r in 0..bn {
                    // SAFETY: same invariants as the descent loop.
                    unsafe {
                        let i = *idx.get_unchecked(r) as usize;
                        let o = *flat.out_code.get_unchecked(i) as usize;
                        *acc.get_unchecked_mut(r) += *flat.leaf_values.get_unchecked(o);
                        if COUNTED {
                            visited += u64::from(*flat.depth1.get_unchecked(i));
                        }
                    }
                }
            }
        }
        for r in 0..bn {
            let raw = flat.base_score + flat.scale * acc[r];
            out[block_start + r] = if TRANSFORM {
                flat.objective.transform(raw)
            } else {
                raw
            };
        }
        block_start += bn;
    }
    visited
}

/// Rows scored together on the QuickScorer path. On the AVX2 variant
/// one entry's mask is applied to all [`QS_SUB`] lanes in a single
/// pass (two 256-bit AND+blend ops), so the entry stream is walked
/// `max(cutoff)` times per sub-block instead of `Σ cutoff` (~8× fewer
/// entry visits on the paper forest). The sub-block's bitvector
/// (trees × QS_SUB × 4 B) stays L1-resident, and the finalize loop
/// interleaves QS_SUB independent accumulator chains so the
/// (determinism-mandated) serial f64 adds of one row pipeline behind
/// its neighbours' instead of stalling.
pub const QS_SUB: usize = 16;

/// The QuickScorer bitvector path (see [`crate::layout::QsTables`]).
///
/// Per sub-block of [`QS_SUB`] rows: rank each row's feature values
/// against the feature's threshold-sorted entry list — the rank is the
/// row's *cutoff*, the count of false split conditions (`t < x`), which
/// form a prefix of the list — then stream the entries up to the
/// sub-block's largest cutoff once, ANDing each entry's packed mask
/// into its tree's leaf bitvector for every row whose cutoff covers it
/// (lane-predicated: parked lanes AND an identity mask). The exit leaf
/// of every tree is the lowest surviving bit. No per-node pointer
/// chases: the inner loops read one sequential `u64` array and
/// read-modify-write 16 contiguous lanes per visit.
///
/// Determinism: each row's leaf values accumulate in global tree order,
/// the exact walker fold; NaN features rank `u32::MAX`, clamp to the
/// full entry list (every condition false), and so route right at every
/// split like the walker.
fn qs_impl<const TRANSFORM: bool, const COUNTED: bool>(
    flat: &FlatForest,
    qs: &QsTables,
    xs: &[Vec<f64>],
    start: usize,
    out: &mut [f64],
) -> u64 {
    qs_impl_inner::<TRANSFORM, COUNTED>(flat, qs, xs, start, out, qs_simd_available())
}

/// Whether the lane-parallel AVX2 entry application is available on
/// this machine (checked at runtime — the build targets baseline
/// x86-64, so the kernel stays portable and self-selects).
#[inline]
fn qs_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar entry application for one feature: walk each row's cutoff
/// prefix of the entry list, ANDing each packed mask into the row's
/// lane of the entry's tree stripe. Parked lanes hold cutoff 0 and do
/// no work.
///
/// Bounds contract (callers': see [`qs_impl_inner`]): every
/// `cuts[rl] <= ` the feature's entry count, `lo` is the feature's
/// entry offset, and `bv` is the full `trees * QS_SUB` stripe array.
#[inline]
fn qs_apply_scalar(ent: &[u64], lo: usize, cuts: &[i32; QS_SUB], bv: &mut [u32]) {
    for (rl, &c) in cuts.iter().enumerate() {
        for k in 0..c as usize {
            // SAFETY: k < cuts[rl] <= the feature's entry count, so
            // lo + k < ent.len(); the packed tree id t < trees, so
            // t * QS_SUB + rl < bv.len().
            unsafe {
                let p = *ent.get_unchecked(lo + k);
                let t = p as u32 as usize;
                *bv.get_unchecked_mut(t * QS_SUB + rl) &= (p >> 32) as u32;
            }
        }
    }
}

/// AVX2 entry application for one feature: one pass over the entry
/// prefix `[lo, lo + cmax)` applies every entry to all [`QS_SUB`] rows
/// at once — rows whose cutoff stops earlier AND an all-ones identity
/// (`blendv` on the `k < cut` lane compare), so the per-sub-block entry
/// walk costs `max(cutoff)` visits instead of `Σ cutoff`.
///
/// # Safety
/// Caller must have verified AVX2 support, `cmax <=` the feature's
/// entry count (with `lo` its offset, so `lo + cmax <= ent.len()`),
/// packed tree ids `< trees`, and `bv` exactly `trees * QS_SUB` long.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qs_apply_avx2(ent: &[u64], lo: usize, cmax: usize, cuts: &[i32; QS_SUB], bv: &mut [u32]) {
    use std::arch::x86_64::*;
    // SAFETY: pointer arithmetic stays inside `ent`/`bv` per the
    // caller contract; loads/stores are unaligned-tolerant (`loadu`).
    unsafe {
        let cut_lo = _mm256_loadu_si256(cuts.as_ptr() as *const __m256i);
        let cut_hi = _mm256_loadu_si256(cuts.as_ptr().add(8) as *const __m256i);
        let ones = _mm256_set1_epi32(-1);
        let step = _mm256_set1_epi32(1);
        // k as a vector, bumped once per entry: signed compares are
        // safe because the layout keeps entry indices <= i32::MAX.
        let mut kv = _mm256_setzero_si256();
        let entp = ent.as_ptr().add(lo);
        let bvp = bv.as_mut_ptr();
        for k in 0..cmax {
            let p = *entp.add(k);
            let t = p as u32 as usize;
            let m = _mm256_set1_epi32((p >> 32) as u32 as i32);
            // Active lanes: cut > k. Parked lanes (cutoff 0) never
            // activate and keep their identity mask.
            let act_lo = _mm256_cmpgt_epi32(cut_lo, kv);
            let act_hi = _mm256_cmpgt_epi32(cut_hi, kv);
            let keep_lo = _mm256_blendv_epi8(ones, m, act_lo);
            let keep_hi = _mm256_blendv_epi8(ones, m, act_hi);
            let stripe = bvp.add(t * QS_SUB);
            let cur_lo = _mm256_loadu_si256(stripe as *const __m256i);
            let cur_hi = _mm256_loadu_si256(stripe.add(8) as *const __m256i);
            _mm256_storeu_si256(stripe as *mut __m256i, _mm256_and_si256(cur_lo, keep_lo));
            _mm256_storeu_si256(
                stripe.add(8) as *mut __m256i,
                _mm256_and_si256(cur_hi, keep_hi),
            );
            kv = _mm256_add_epi32(kv, step);
        }
    }
}

/// [`qs_impl`] body with the SIMD dispatch explicit, so tests can force
/// the scalar application path on machines where detection would pick
/// AVX2 (both must be bitwise-identical to the walker).
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn qs_impl_inner<const TRANSFORM: bool, const COUNTED: bool>(
    flat: &FlatForest,
    qs: &QsTables,
    xs: &[Vec<f64>],
    start: usize,
    out: &mut [f64],
    allow_simd: bool,
) -> u64 {
    let nf = flat.num_features;
    let trees = flat.roots.len();
    let mut visited = 0u64;
    // Sub-block state, allocated once per chunk: feature-major cutoff
    // lanes (cutt[f][rl]; parked lanes hold 0 and never match) and the
    // transposed per-(tree, row) bitvectors (bv[t * QS_SUB + rl] —
    // tree-major, so one entry's QS_SUB lanes are one contiguous line).
    let mut cutt = vec![[0i32; QS_SUB]; nf];
    let mut bv = vec![0u32; trees * QS_SUB];
    let mut sub = 0usize;
    while sub < out.len() {
        let sn = QS_SUB.min(out.len() - sub);
        let rows = &xs[start + sub..start + sub + sn];
        for row in rows {
            assert!(
                row.len() >= nf,
                "feature row has {} values, forest expects {nf}",
                row.len()
            );
        }
        // Rank once per sub-block, feature-major so each entry list is
        // searched while hot and the independent search chains overlap.
        for (f, lanes) in cutt.iter_mut().enumerate() {
            let lo = qs.offsets[f] as usize;
            let hi = qs.offsets[f + 1] as usize;
            let table = &qs.thr[lo..hi];
            let len = table.len() as u32;
            *lanes = [0; QS_SUB];
            for (rl, row) in rows.iter().enumerate() {
                // Entry counts are <= i32::MAX by layout construction,
                // so the clamped rank is i32-representable.
                lanes[rl] = rank(table, row[f]).min(len) as i32;
            }
        }
        // All-ones start: bits at or above a tree's leaf count are
        // never cleared (masks only cover real leaves), and the
        // finalize below never reads past the tree's leaf range.
        // Parked lanes (rl >= sn) stay all-ones and are never read.
        bv.fill(!0u32);
        for (f, cuts) in cutt.iter().enumerate() {
            let lo = qs.offsets[f] as usize;
            // Bounds for both application paths: each lane's cutoff is
            // clamped to the feature's entry count above, packed tree
            // ids enumerate the source trees, and bv spans
            // trees * QS_SUB.
            #[cfg(target_arch = "x86_64")]
            if allow_simd {
                let cmax = cuts.iter().copied().max().unwrap_or(0) as usize;
                // SAFETY: AVX2 verified by the dispatcher; cmax is the
                // lane maximum, still <= the feature's entry count.
                unsafe { qs_apply_avx2(&qs.ent, lo, cmax, cuts, &mut bv) };
                continue;
            }
            qs_apply_scalar(&qs.ent, lo, cuts, &mut bv);
        }
        let mut acc = [0.0f64; QS_SUB];
        for t in 0..trees {
            let loff = qs.leaf_offsets[t] as usize;
            let cnt = qs.leaf_offsets[t + 1] as usize - loff;
            // The exit leaf always survives (false conditions only
            // clear subtrees the walker did not enter), so the lowest
            // set bit is a real leaf slot; min() keeps the gather in
            // range even if that invariant were broken.
            for rl in 0..sn {
                // SAFETY: t * QS_SUB + rl < trees * QS_SUB = bv.len();
                // loff + slot < leaf_offsets[t + 1] <= the slot-aligned
                // array lengths.
                unsafe {
                    let word = *bv.get_unchecked(t * QS_SUB + rl);
                    let slot = (word.trailing_zeros() as usize).min(cnt - 1);
                    *acc.get_unchecked_mut(rl) += *qs.leaf_value.get_unchecked(loff + slot);
                    if COUNTED {
                        visited += u64::from(*qs.leaf_depth1.get_unchecked(loff + slot));
                    }
                }
            }
        }
        for (rl, &a) in acc.iter().take(sn).enumerate() {
            let raw = flat.base_score + flat.scale * a;
            out[sub + rl] = if TRANSFORM {
                flat.objective.transform(raw)
            } else {
                raw
            };
        }
        sub += sn;
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Forest, Node, Objective, Tree};

    fn forest() -> Forest {
        let t0 = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 5.0, 100),
                Node::split(1, 0.25, 3, 4, 2.0, 60),
                Node::leaf(3.0, 40),
                Node::leaf(1.0, 25),
                Node::leaf(2.0, 35),
            ],
        };
        let t1 = Tree {
            nodes: vec![
                Node::split(1, 0.75, 1, 2, 4.0, 100),
                Node::leaf(0.5, 50),
                Node::leaf(-2.0, 50),
            ],
        };
        Forest::new(vec![t0, t1], 0.5, 1.0, Objective::RegressionL2, 2)
    }

    #[test]
    fn kernel_matches_walker_bitwise() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64 / 16.0, (i % 5) as f64 / 4.0])
            .collect();
        let raw = predict_raw(&flat, &xs);
        let resp = predict_response(&flat, &xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(raw[i].to_bits(), forest.predict_raw(x).to_bits());
            assert_eq!(resp[i].to_bits(), forest.predict(x).to_bits());
        }
    }

    #[test]
    fn counted_matches_walker_visits() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 13) as f64 / 12.0, (i % 7) as f64 / 6.0])
            .collect();
        let (resp, visited) = predict_response_counted(&flat, &xs);
        let mut want_visits = 0u64;
        for (i, x) in xs.iter().enumerate() {
            let (raw, n) = forest.predict_raw_counted(x);
            want_visits += n;
            assert_eq!(resp[i].to_bits(), forest.objective.transform(raw).to_bits());
        }
        assert_eq!(visited, want_visits);
    }

    #[test]
    fn nan_features_route_right_like_walker() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        let xs = vec![
            vec![f64::NAN, 0.1],
            vec![0.1, f64::NAN],
            vec![f64::NAN, f64::NAN],
        ];
        let raw = predict_raw(&flat, &xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(raw[i].to_bits(), forest.predict_raw(x).to_bits());
        }
    }

    /// Both QuickScorer application paths — lane-parallel SIMD (when
    /// the machine has it) and the scalar fallback — must agree with
    /// each other and with the walker, bit for bit, NaN rows included.
    #[test]
    fn scalar_and_simd_qs_applications_match_walker() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        let qs = flat.qs.as_ref().expect("small trees build QS tables");
        let xs: Vec<Vec<f64>> = (0..150)
            .map(|i| {
                if i % 31 == 0 {
                    vec![f64::NAN, (i % 5) as f64 / 4.0]
                } else {
                    vec![(i % 17) as f64 / 16.0, (i % 5) as f64 / 4.0]
                }
            })
            .collect();
        for allow_simd in [false, true] {
            let mut raw = vec![0.0; xs.len()];
            qs_impl_inner::<false, false>(&flat, qs, &xs, 0, &mut raw, allow_simd);
            let mut resp = vec![0.0; xs.len()];
            let visited = qs_impl_inner::<true, true>(&flat, qs, &xs, 0, &mut resp, allow_simd);
            let mut want_visits = 0u64;
            for (i, x) in xs.iter().enumerate() {
                let (wraw, n) = forest.predict_raw_counted(x);
                want_visits += n;
                assert_eq!(
                    raw[i].to_bits(),
                    wraw.to_bits(),
                    "simd={allow_simd} row {i}"
                );
                assert_eq!(
                    resp[i].to_bits(),
                    forest.objective.transform(wraw).to_bits(),
                    "simd={allow_simd} row {i}"
                );
            }
            assert_eq!(visited, want_visits, "simd={allow_simd}");
        }
    }

    /// Trees wider than 32 leaves get no QS tables and descend instead;
    /// the descent must stay bitwise-faithful to the walker.
    #[test]
    fn wide_leaf_tree_skips_qs_and_descends_bitwise() {
        // Right-spine chain: 40 splits, 41 leaves.
        let mut nodes = Vec::new();
        for i in 0..40u32 {
            nodes.push(Node::split(
                0,
                i as f64 / 40.0,
                2 * i + 1,
                2 * i + 2,
                1.0,
                41 - i,
            ));
            nodes.push(Node::leaf(i as f64 / 10.0, 1));
        }
        nodes.push(Node::leaf(9.0, 1));
        let forest = Forest::new(vec![Tree { nodes }], 0.0, 1.0, Objective::RegressionL2, 1);
        let flat = forest.flattened().expect("wide tree flattens");
        assert!(flat.qs.is_none(), "41-leaf tree must not build QS tables");
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64 - 50.0) / 120.0]).collect();
        let raw = predict_raw(&flat, &xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(raw[i].to_bits(), forest.predict_raw(x).to_bits());
        }
    }

    #[test]
    fn short_row_panics_like_walker() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        let result = std::panic::catch_unwind(|| predict_raw(&flat, &[vec![0.5]]));
        assert!(result.is_err(), "1-wide row into a 2-feature forest");
    }

    #[test]
    fn empty_batch_and_single_leaf_forest() {
        let forest = forest();
        let flat = forest.flattened().expect("valid forest flattens");
        assert!(predict_raw(&flat, &[]).is_empty());

        let stub = Forest::new(
            vec![Tree::constant(1.5, 3)],
            0.25,
            2.0,
            Objective::RegressionL2,
            0,
        );
        let flat = stub.flattened().expect("single leaf flattens");
        // Zero-feature rows are fine: depth 0 means no feature access.
        let raw = predict_raw(&flat, &[vec![], vec![]]);
        assert_eq!(raw, vec![3.25, 3.25]);
        let (_, visited) = predict_response_counted(&flat, &[vec![]]);
        assert_eq!(visited, 1, "walker visits exactly the root leaf");
    }
}
