//! Forest introspection: gain-based feature importance and split
//! threshold extraction.
//!
//! These are the signals GEF elicits from the forest in place of the
//! (unavailable) training data:
//!
//! * [`gain_importance`] — per-feature accumulated loss reduction across
//!   all split nodes (paper Sec. 3.2, univariate component selection);
//! * [`split_count_importance`] — number of splits per feature, a common
//!   secondary importance measure;
//! * [`feature_thresholds`] — the sorted, de-duplicated list `V_i` of
//!   thresholds per feature (paper Sec. 3.3, sampling domains);
//! * [`FeatureStats`] — everything above in one pass.

use crate::Forest;
use serde::{Deserialize, Serialize};

/// Per-feature statistics elicited from a forest in a single pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureStats {
    /// Accumulated split gain per feature.
    pub gain: Vec<f64>,
    /// Number of split nodes per feature.
    pub split_count: Vec<usize>,
    /// Sorted, de-duplicated split thresholds per feature.
    pub thresholds: Vec<Vec<f64>>,
    /// Sorted split thresholds per feature **with multiplicity** — one
    /// entry per split node (the paper's `V_i`). The multiplicity is
    /// the sampling signal: regions where the forest splits often are
    /// regions of high prediction variability, and the density-aware
    /// strategies (K-Quantile, K-Means, Equi-Size) rely on it.
    pub threshold_multiset: Vec<Vec<f64>>,
}

impl FeatureStats {
    /// Collect statistics from a forest.
    pub fn collect(forest: &Forest) -> Self {
        let d = forest.num_features;
        let mut gain = vec![0.0; d];
        let mut split_count = vec![0usize; d];
        let mut threshold_multiset: Vec<Vec<f64>> = vec![Vec::new(); d];
        for tree in &forest.trees {
            for node in &tree.nodes {
                if node.is_leaf() {
                    continue;
                }
                let f = node.feature as usize;
                gain[f] += node.gain;
                split_count[f] += 1;
                threshold_multiset[f].push(node.threshold);
            }
        }
        let mut thresholds = Vec::with_capacity(d);
        for v in &mut threshold_multiset {
            v.sort_by(|a, b| a.total_cmp(b));
            let mut dedup = v.clone();
            dedup.dedup();
            thresholds.push(dedup);
        }
        FeatureStats {
            gain,
            split_count,
            thresholds,
            threshold_multiset,
        }
    }

    /// Features sorted by descending gain (index, gain), with zero-gain
    /// (never used) features excluded.
    pub fn ranked_by_gain(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .gain
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, g)| g > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Indices of the top-`k` features by gain (the paper's `F'`).
    pub fn top_features(&self, k: usize) -> Vec<usize> {
        self.ranked_by_gain()
            .into_iter()
            .take(k)
            .map(|(f, _)| f)
            .collect()
    }
}

/// Accumulated split gain per feature (length = `forest.num_features`).
pub fn gain_importance(forest: &Forest) -> Vec<f64> {
    FeatureStats::collect(forest).gain
}

/// Number of split nodes per feature.
pub fn split_count_importance(forest: &Forest) -> Vec<usize> {
    FeatureStats::collect(forest).split_count
}

/// Sorted, de-duplicated split thresholds of one feature across the
/// whole forest (the paper's `V_i`).
pub fn feature_thresholds(forest: &Forest, feature: usize) -> Vec<f64> {
    let mut v: Vec<f64> = forest
        .trees
        .iter()
        .flat_map(|t| t.nodes.iter())
        .filter(|n| !n.is_leaf() && n.feature as usize == feature)
        .map(|n| n.threshold)
        .collect();
    v.sort_by(|a, b| a.total_cmp(b));
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Node, Tree};
    use crate::Objective;

    fn two_tree_forest() -> Forest {
        // Tree A: split on f0 @ 0.5 (gain 4), then f1 @ 0.2 (gain 1).
        let a = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 4.0, 10),
                Node::split(1, 0.2, 3, 4, 1.0, 6),
                Node::leaf(1.0, 4),
                Node::leaf(-1.0, 3),
                Node::leaf(0.5, 3),
            ],
        };
        // Tree B: split on f0 @ 0.7 (gain 2).
        let b = Tree {
            nodes: vec![
                Node::split(0, 0.7, 1, 2, 2.0, 10),
                Node::leaf(0.0, 5),
                Node::leaf(1.0, 5),
            ],
        };
        Forest::new(vec![a, b], 0.0, 1.0, Objective::RegressionL2, 3)
    }

    #[test]
    fn gain_accumulates_across_trees() {
        let f = two_tree_forest();
        let g = gain_importance(&f);
        assert_eq!(g, vec![6.0, 1.0, 0.0]);
        let c = split_count_importance(&f);
        assert_eq!(c, vec![2, 1, 0]);
    }

    #[test]
    fn thresholds_sorted_and_deduped() {
        let f = two_tree_forest();
        assert_eq!(feature_thresholds(&f, 0), vec![0.5, 0.7]);
        assert_eq!(feature_thresholds(&f, 1), vec![0.2]);
        assert!(feature_thresholds(&f, 2).is_empty());
    }

    #[test]
    fn ranking_and_top_features() {
        let f = two_tree_forest();
        let stats = FeatureStats::collect(&f);
        assert_eq!(stats.ranked_by_gain(), vec![(0, 6.0), (1, 1.0)]);
        assert_eq!(stats.top_features(1), vec![0]);
        assert_eq!(stats.top_features(5), vec![0, 1]); // unused f2 excluded
    }

    #[test]
    fn duplicate_thresholds_collapse() {
        let mut f = two_tree_forest();
        f.trees[1].nodes[0].threshold = 0.5; // same as tree A's root
        assert_eq!(feature_thresholds(&f, 0), vec![0.5]);
    }
}
