//! Forest model (de)serialization.
//!
//! Two formats:
//!
//! * **JSON** ([`to_json`] / [`from_json`]) via serde — lossless round
//!   trip of the in-memory representation;
//! * a **LightGBM-style text format** ([`to_text`] / [`from_text`]) with
//!   per-tree blocks of parallel arrays (`split_feature`, `threshold`,
//!   `left_child`, `right_child`, `leaf_value`, `split_gain`, `count`),
//!   so models trained elsewhere can be imported by writing this simple
//!   dump, and our models can be inspected with a pager.
//!
//! The GEF scenario assumes the explainer is a third party with full
//! access to the forest *structure* — this module is exactly that
//! interchange point.

use crate::tree::{Node, Tree, LEAF};
use crate::{Forest, ForestError, Objective, Result};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Owned serde mirror of [`Forest`]'s model fields.
///
/// [`Forest`] itself carries a non-serializable runtime cache (the
/// flattened kernel layout), so the JSON format is defined by this
/// struct instead; field names and order match the pre-cache `Forest`
/// derive, keeping the on-disk format unchanged.
#[derive(Serialize, Deserialize)]
struct ForestWire {
    trees: Vec<Tree>,
    base_score: f64,
    scale: f64,
    objective: Objective,
    num_features: usize,
}

/// Serialize a forest to JSON.
pub fn to_json(forest: &Forest) -> String {
    let wire = ForestWire {
        trees: forest.trees.clone(),
        base_score: forest.base_score,
        scale: forest.scale,
        objective: forest.objective,
        num_features: forest.num_features,
    };
    // Writing to an in-memory string cannot fail; an error here would
    // be a serializer bug, surfaced as an explicit marker rather than
    // a panic (the crate denies unwrap/expect outside tests).
    serde_json::to_string(&wire).unwrap_or_else(|_| "null".to_string())
}

/// Deserialize a forest from JSON, validating tree structure.
pub fn from_json(s: &str) -> Result<Forest> {
    let wire: ForestWire =
        serde_json::from_str(s).map_err(|e| ForestError::Parse(format!("json: {e}")))?;
    let forest = Forest::new(
        wire.trees,
        wire.base_score,
        wire.scale,
        wire.objective,
        wire.num_features,
    );
    validate(&forest)?;
    Ok(forest)
}

/// Serialize a forest to the LightGBM-style text format.
pub fn to_text(forest: &Forest) -> String {
    let mut out = String::new();
    out.push_str("gef_forest_v1\n");
    let obj = match forest.objective {
        Objective::RegressionL2 => "regression",
        Objective::BinaryLogistic => "binary",
    };
    // String writes are infallible; `let _ =` keeps the no-panic lint
    // satisfied without pretending an error path exists.
    let _ = writeln!(out, "objective={obj}");
    let _ = writeln!(out, "num_features={}", forest.num_features);
    let _ = writeln!(out, "base_score={}", forest.base_score);
    let _ = writeln!(out, "scale={}", forest.scale);
    let _ = writeln!(out, "num_trees={}", forest.trees.len());
    for (i, tree) in forest.trees.iter().enumerate() {
        let _ = writeln!(out, "\nTree={i}");
        let _ = writeln!(out, "num_nodes={}", tree.nodes.len());
        write_field(
            &mut out,
            "split_feature",
            tree.nodes.iter().map(|n| n.feature.to_string()),
        );
        write_field(
            &mut out,
            "threshold",
            tree.nodes.iter().map(|n| format!("{}", n.threshold)),
        );
        write_field(
            &mut out,
            "left_child",
            tree.nodes.iter().map(|n| n.left.to_string()),
        );
        write_field(
            &mut out,
            "right_child",
            tree.nodes.iter().map(|n| n.right.to_string()),
        );
        write_field(
            &mut out,
            "leaf_value",
            tree.nodes.iter().map(|n| format!("{}", n.value)),
        );
        write_field(
            &mut out,
            "split_gain",
            tree.nodes.iter().map(|n| format!("{}", n.gain)),
        );
        write_field(
            &mut out,
            "count",
            tree.nodes.iter().map(|n| n.count.to_string()),
        );
    }
    out
}

fn write_field(out: &mut String, name: &str, vals: impl Iterator<Item = String>) {
    out.push_str(name);
    out.push('=');
    let mut first = true;
    for v in vals {
        if !first {
            out.push(' ');
        }
        out.push_str(&v);
        first = false;
    }
    out.push('\n');
}

/// Parse a forest from the LightGBM-style text format.
///
/// Parse errors carry the 1-based line number of the offending line;
/// structural problems (duplicate or out-of-order `Tree=` blocks,
/// truncated field arrays, out-of-range child indices, non-finite split
/// thresholds) are rejected with a description instead of panicking
/// downstream.
pub fn from_text(s: &str) -> Result<Forest> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());
    let (header_line, header) = lines
        .next()
        .ok_or_else(|| ForestError::Parse("empty model text".into()))?;
    if header != "gef_forest_v1" {
        return Err(ForestError::Parse(format!(
            "line {header_line}: unknown format header: {header:?}"
        )));
    }
    let mut objective = None;
    let mut num_features = None;
    let mut base_score = None;
    let mut scale = None;
    let mut num_trees = None;
    let mut trees: Vec<Tree> = Vec::new();
    let mut pending: Option<TreeFields> = None;

    for (lineno, line) in lines {
        let (key, val) = line.split_once('=').ok_or_else(|| {
            ForestError::Parse(format!("line {lineno}: bad line (no '='): {line:?}"))
        })?;
        let res: Result<()> = (|| {
            match key {
                "objective" => {
                    objective = Some(match val {
                        "regression" => Objective::RegressionL2,
                        "binary" => Objective::BinaryLogistic,
                        other => {
                            return Err(ForestError::Parse(format!("unknown objective {other:?}")))
                        }
                    })
                }
                "num_features" => num_features = Some(parse_num::<usize>(key, val)?),
                "base_score" => base_score = Some(parse_num::<f64>(key, val)?),
                "scale" => scale = Some(parse_num::<f64>(key, val)?),
                "num_trees" => num_trees = Some(parse_num::<usize>(key, val)?),
                "Tree" => {
                    if let Some(p) = pending.take() {
                        trees.push(p.finish()?);
                    }
                    // Tree blocks must appear exactly once each, in
                    // order: a duplicated or shuffled block would
                    // silently reassemble a different ensemble.
                    let idx = parse_num::<usize>(key, val)?;
                    if idx != trees.len() {
                        return Err(ForestError::Parse(format!(
                            "Tree={idx} out of order (expected Tree={}; duplicate or \
                             missing block?)",
                            trees.len()
                        )));
                    }
                    pending = Some(TreeFields::default());
                }
                "num_nodes" => {
                    let p = expect_tree(&mut pending, key)?;
                    p.num_nodes = Some(parse_num::<usize>(key, val)?);
                }
                "split_feature" => expect_tree(&mut pending, key)?.feature = parse_vec(key, val)?,
                "threshold" => expect_tree(&mut pending, key)?.threshold = parse_vec(key, val)?,
                "left_child" => expect_tree(&mut pending, key)?.left = parse_vec(key, val)?,
                "right_child" => expect_tree(&mut pending, key)?.right = parse_vec(key, val)?,
                "leaf_value" => expect_tree(&mut pending, key)?.value = parse_vec(key, val)?,
                "split_gain" => expect_tree(&mut pending, key)?.gain = parse_vec(key, val)?,
                "count" => expect_tree(&mut pending, key)?.count = parse_vec(key, val)?,
                other => return Err(ForestError::Parse(format!("unknown key {other:?}"))),
            }
            Ok(())
        })();
        res.map_err(|e| match e {
            ForestError::Parse(msg) => ForestError::Parse(format!("line {lineno}: {msg}")),
            other => other,
        })?;
    }
    if let Some(p) = pending.take() {
        trees.push(p.finish().map_err(|e| match e {
            ForestError::Parse(msg) => {
                ForestError::Parse(format!("tree {} (last block): {msg}", trees.len()))
            }
            other => other,
        })?);
    }
    let forest = Forest::new(
        trees,
        base_score.ok_or_else(|| missing("base_score"))?,
        scale.ok_or_else(|| missing("scale"))?,
        objective.ok_or_else(|| missing("objective"))?,
        num_features.ok_or_else(|| missing("num_features"))?,
    );
    let expected = num_trees.ok_or_else(|| missing("num_trees"))?;
    if forest.trees.len() != expected {
        return Err(ForestError::Parse(format!(
            "num_trees={expected} but found {} tree blocks",
            forest.trees.len()
        )));
    }
    validate(&forest)?;
    Ok(forest)
}

fn missing(key: &str) -> ForestError {
    ForestError::Parse(format!("missing required key {key:?}"))
}

fn expect_tree<'a>(pending: &'a mut Option<TreeFields>, key: &str) -> Result<&'a mut TreeFields> {
    pending
        .as_mut()
        .ok_or_else(|| ForestError::Parse(format!("{key} outside of a Tree block")))
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T> {
    val.parse()
        .map_err(|_| ForestError::Parse(format!("bad value for {key}: {val:?}")))
}

fn parse_vec<T: std::str::FromStr>(key: &str, val: &str) -> Result<Vec<T>> {
    val.split_whitespace()
        .map(|t| parse_num::<T>(key, t))
        .collect()
}

#[derive(Default)]
struct TreeFields {
    num_nodes: Option<usize>,
    feature: Vec<i32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    value: Vec<f64>,
    gain: Vec<f64>,
    count: Vec<u32>,
}

impl TreeFields {
    fn finish(self) -> Result<Tree> {
        let n = self.num_nodes.ok_or_else(|| missing("num_nodes"))?;
        for (name, len) in [
            ("split_feature", self.feature.len()),
            ("threshold", self.threshold.len()),
            ("left_child", self.left.len()),
            ("right_child", self.right.len()),
            ("leaf_value", self.value.len()),
            ("split_gain", self.gain.len()),
            ("count", self.count.len()),
        ] {
            if len != n {
                return Err(ForestError::Parse(format!(
                    "{name} has {len} entries, expected {n}"
                )));
            }
        }
        let nodes = (0..n)
            .map(|i| Node {
                feature: self.feature[i],
                threshold: self.threshold[i],
                left: self.left[i],
                right: self.right[i],
                value: self.value[i],
                gain: self.gain[i],
                count: self.count[i],
            })
            .collect();
        Ok(Tree { nodes })
    }
}

/// Structural validation of a parsed forest (shared with the binary
/// codec: both decode paths enforce identical invariants).
pub(crate) fn validate(forest: &Forest) -> Result<()> {
    for (i, tree) in forest.trees.iter().enumerate() {
        tree.validate()
            .map_err(|e| ForestError::Parse(format!("tree {i}: {e}")))?;
        for node in &tree.nodes {
            if !node.is_leaf() {
                if node.feature != LEAF && node.feature as usize >= forest.num_features {
                    return Err(ForestError::Parse(format!(
                        "tree {i}: feature index {} out of range (num_features={})",
                        node.feature, forest.num_features
                    )));
                }
                if !node.threshold.is_finite() {
                    return Err(ForestError::Parse(format!(
                        "tree {i}: non-finite threshold"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbdtParams, GbdtTrainer};

    fn small_forest() -> Forest {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64 / 17.0, (i % 7) as f64 / 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 8,
            num_leaves: 6,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn json_round_trip_exact() {
        let f = small_forest();
        let s = to_json(&f);
        let g = from_json(&s).unwrap();
        assert_eq!(f.trees.len(), g.trees.len());
        for (a, b) in f.trees.iter().zip(&g.trees) {
            assert_eq!(a, b);
        }
        assert_eq!(f.predict(&[0.3, 0.6]), g.predict(&[0.3, 0.6]));
    }

    #[test]
    fn text_round_trip_exact() {
        let f = small_forest();
        let s = to_text(&f);
        let g = from_text(&s).unwrap();
        assert_eq!(f.trees.len(), g.trees.len());
        assert_eq!(f.base_score, g.base_score);
        for (a, b) in f.trees.iter().zip(&g.trees) {
            assert_eq!(a.nodes.len(), b.nodes.len());
            for (na, nb) in a.nodes.iter().zip(&b.nodes) {
                assert_eq!(na, nb);
            }
        }
        // Predictions match bit-for-bit (shortest round-trip formatting).
        for x in [[0.1, 0.9], [0.5, 0.5], [0.77, 0.01]] {
            assert_eq!(f.predict(&x), g.predict(&x));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("not_a_model\n").is_err());
        assert!(from_json("{").is_err());
        assert!(from_text("gef_forest_v1\nobjective=martian\n").is_err());
    }

    #[test]
    fn rejects_wrong_tree_count() {
        let f = small_forest();
        let s = to_text(&f).replace(&format!("num_trees={}", f.trees.len()), "num_trees=99");
        assert!(from_text(&s).is_err());
    }

    #[test]
    fn rejects_field_length_mismatch() {
        let mut f = small_forest();
        f.trees.truncate(1);
        let s = to_text(&f);
        // Drop one entry from the count field.
        let s = s
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("count=") {
                    let mut parts: Vec<&str> = rest.split_whitespace().collect();
                    parts.pop();
                    format!("count={}", parts.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_text(&s).is_err());
    }

    #[test]
    fn rejects_out_of_range_feature() {
        let mut f = small_forest();
        f.num_features = 1; // tree nodes still reference feature 1
        let json = to_json(&f);
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn rejects_truncated_text() {
        let f = small_forest();
        let s = to_text(&f);
        // Cutting the dump anywhere after the header must fail cleanly
        // (missing keys, short field arrays, or a wrong tree count) —
        // never panic or silently accept a partial ensemble.
        for frac in [1, 2, 3] {
            let cut = s.len() * frac / 4;
            let truncated = &s[..cut];
            assert!(from_text(truncated).is_err(), "cut at {cut} bytes");
        }
    }

    #[test]
    fn rejects_duplicate_tree_block() {
        let f = small_forest();
        let s = to_text(&f);
        // Duplicate the first tree block verbatim: same Tree=0 header
        // twice. The parser must flag the out-of-order index.
        let start = s.find("Tree=0").unwrap();
        let end = s.find("Tree=1").unwrap();
        let block = &s[start..end];
        let dup = format!("{}{}{}", &s[..end], block, &s[end..]);
        let err = from_text(&dup).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("out of order"), "unexpected error: {msg}");
        assert!(msg.contains("line "), "error lacks line number: {msg}");
    }

    #[test]
    fn rejects_out_of_range_child_in_text() {
        let mut f = small_forest();
        f.trees.truncate(1);
        let s = to_text(&f).replace("num_trees=8", "num_trees=1");
        // Point every left child at node 999.
        let s = s
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("left_child=") {
                    let n = rest.split_whitespace().count();
                    format!("left_child={}", vec!["999"; n].join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = from_text(&s).unwrap_err();
        assert!(err.to_string().contains("child index out of range"));
    }

    #[test]
    fn rejects_non_finite_threshold_in_text() {
        let mut f = small_forest();
        f.trees.truncate(1);
        let s = to_text(&f).replace("num_trees=8", "num_trees=1");
        let s = s
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("threshold=") {
                    let n = rest.split_whitespace().count();
                    format!("threshold={}", vec!["NaN"; n].join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = from_text(&s).unwrap_err();
        assert!(err.to_string().contains("non-finite threshold"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_text("gef_forest_v1\nnum_features=oops\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = from_text("gef_forest_v1\nnot a key value line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn binary_objective_round_trips() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 5,
            num_leaves: 4,
            min_data_in_leaf: 5,
            objective: Objective::BinaryLogistic,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let g = from_text(&to_text(&f)).unwrap();
        assert_eq!(g.objective, Objective::BinaryLogistic);
        assert_eq!(f.predict(&[0.9]), g.predict(&[0.9]));
    }
}
