//! Quantile histogram binning for the GBDT trainer.
//!
//! Each feature is discretized into at most `max_bins` bins whose
//! boundaries are quantiles of the *distinct* observed values, matching
//! LightGBM's strategy. Split thresholds emitted by the trainer are the
//! midpoints between the largest value in the left bin and the smallest
//! value in the right bin, so a trained tree applied to the training data
//! reproduces exactly the partition the histogram chose.

use crate::{ForestError, Result};

/// Per-feature binning information.
#[derive(Debug, Clone)]
pub struct FeatureBins {
    /// Upper-boundary thresholds between consecutive bins: a value `v`
    /// belongs to bin `b` iff `uppers[b-1] < v <= uppers[b]`, with
    /// `uppers.len() == num_bins - 1`. Thresholds are midpoints between
    /// adjacent observed values.
    pub uppers: Vec<f64>,
}

impl FeatureBins {
    /// Number of bins (`uppers.len() + 1`, at least 1).
    pub fn num_bins(&self) -> usize {
        self.uppers.len() + 1
    }

    /// Map a raw feature value to its bin index via binary search.
    #[inline]
    pub fn bin_of(&self, v: f64) -> u16 {
        // partition_point returns the count of uppers < v treated as
        // "value goes right of this boundary"; predicate is `upper < v`
        // so that v == upper lands in the left bin (x <= t goes left).
        self.uppers.partition_point(|&u| u < v) as u16
    }
}

/// Binned representation of a training matrix (column-major bins).
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    /// `bins[f][i]` is the bin of instance `i` on feature `f`.
    pub bins: Vec<Vec<u16>>,
    /// Per-feature binning metadata.
    pub features: Vec<FeatureBins>,
    /// Number of instances.
    pub num_rows: usize,
}

impl BinnedDataset {
    /// Bin a row-major dataset (`xs[i][f]`) into at most `max_bins` bins
    /// per feature.
    pub fn build(xs: &[Vec<f64>], max_bins: usize) -> Result<Self> {
        if xs.is_empty() {
            return Err(ForestError::InvalidData("no rows".into()));
        }
        let num_features = xs[0].len();
        if num_features == 0 {
            return Err(ForestError::InvalidData("no features".into()));
        }
        if max_bins < 2 {
            return Err(ForestError::InvalidParams(format!(
                "max_bins must be >= 2, got {max_bins}"
            )));
        }
        for (i, row) in xs.iter().enumerate() {
            if row.len() != num_features {
                return Err(ForestError::InvalidData(format!(
                    "row {i} has {} features, expected {num_features}",
                    row.len()
                )));
            }
        }
        let num_rows = xs.len();
        let mut features = Vec::with_capacity(num_features);
        let mut bins = Vec::with_capacity(num_features);
        let mut col = vec![0.0f64; num_rows];
        for f in 0..num_features {
            for (i, row) in xs.iter().enumerate() {
                let v = row[f];
                if !v.is_finite() {
                    return Err(ForestError::InvalidData(format!(
                        "non-finite value at row {i}, feature {f}"
                    )));
                }
                col[i] = v;
            }
            let fb = bin_boundaries(&mut col.clone(), max_bins);
            let mut fcol = Vec::with_capacity(num_rows);
            for row in xs {
                fcol.push(fb.bin_of(row[f]));
            }
            features.push(fb);
            bins.push(fcol);
        }
        Ok(BinnedDataset {
            bins,
            features,
            num_rows,
        })
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }
}

/// Compute bin boundaries for one feature column (sorted in place).
///
/// Distinct values are grouped into at most `max_bins` equal-frequency
/// groups; each boundary is the midpoint between the adjacent distinct
/// values it separates.
fn bin_boundaries(col: &mut [f64], max_bins: usize) -> FeatureBins {
    // NaN is rejected earlier; total_cmp orders finite values the same
    // as partial_cmp and cannot panic.
    col.sort_by(|a, b| a.total_cmp(b));
    // Distinct values with multiplicities.
    let mut distinct: Vec<(f64, usize)> = Vec::new();
    for &v in col.iter() {
        match distinct.last_mut() {
            Some((last, cnt)) if *last == v => *cnt += 1,
            _ => distinct.push((v, 1)),
        }
    }
    if distinct.len() <= max_bins {
        // One bin per distinct value; boundaries at midpoints.
        let uppers = distinct
            .windows(2)
            .map(|w| 0.5 * (w[0].0 + w[1].0))
            .collect();
        return FeatureBins { uppers };
    }
    // Equal-frequency grouping over instances (greedy; a distinct value
    // never straddles two bins).
    let total = col.len();
    let target = total as f64 / max_bins as f64;
    let mut uppers = Vec::with_capacity(max_bins - 1);
    let mut acc = 0usize;
    let mut next_cut = target;
    for w in distinct.windows(2) {
        acc += w[0].1;
        if acc as f64 >= next_cut && uppers.len() + 1 < max_bins {
            uppers.push(0.5 * (w[0].0 + w[1].0));
            next_cut = (uppers.len() + 1) as f64 * target;
        }
    }
    FeatureBins { uppers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let xs: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0], vec![1.0], vec![2.0]];
        let b = BinnedDataset::build(&xs, 255).unwrap();
        assert_eq!(b.features[0].num_bins(), 3);
        assert_eq!(b.features[0].uppers, vec![0.5, 1.5]);
        assert_eq!(b.bins[0], vec![0, 1, 1, 2]);
    }

    #[test]
    fn bin_of_boundary_goes_left() {
        let fb = FeatureBins {
            uppers: vec![0.5, 1.5],
        };
        assert_eq!(fb.bin_of(0.5), 0); // exactly on boundary -> left bin
        assert_eq!(fb.bin_of(0.500001), 1);
        assert_eq!(fb.bin_of(-10.0), 0);
        assert_eq!(fb.bin_of(10.0), 2);
    }

    #[test]
    fn many_values_respect_max_bins() {
        let xs: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let b = BinnedDataset::build(&xs, 16).unwrap();
        assert!(b.features[0].num_bins() <= 16);
        assert!(b.features[0].num_bins() >= 15);
        // Bins are roughly equal-frequency.
        let mut counts = vec![0usize; b.features[0].num_bins()];
        for &bin in &b.bins[0] {
            counts[bin as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 2 * min.max(1), "counts={counts:?}");
    }

    #[test]
    fn binning_is_monotone() {
        let xs: Vec<Vec<f64>> = (0..500).map(|i| vec![(i as f64 * 0.37).sin()]).collect();
        let b = BinnedDataset::build(&xs, 32).unwrap();
        // For any two rows, value order implies bin order (weakly).
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len().min(i + 50) {
                let (vi, vj) = (xs[i][0], xs[j][0]);
                let (bi, bj) = (b.bins[0][i], b.bins[0][j]);
                if vi < vj {
                    assert!(bi <= bj);
                } else if vi > vj {
                    assert!(bi >= bj);
                } else {
                    assert_eq!(bi, bj);
                }
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BinnedDataset::build(&[], 255).is_err());
        assert!(BinnedDataset::build(&[vec![]], 255).is_err());
        assert!(BinnedDataset::build(&[vec![1.0], vec![1.0, 2.0]], 255).is_err());
        assert!(BinnedDataset::build(&[vec![f64::NAN]], 255).is_err());
        assert!(BinnedDataset::build(&[vec![1.0]], 1).is_err());
    }

    #[test]
    fn constant_feature_single_bin() {
        let xs: Vec<Vec<f64>> = (0..10).map(|_| vec![3.0]).collect();
        let b = BinnedDataset::build(&xs, 255).unwrap();
        assert_eq!(b.features[0].num_bins(), 1);
        assert!(b.bins[0].iter().all(|&x| x == 0));
    }
}
