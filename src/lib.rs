//! # gef — GAM-based Explanation of Forests
//!
//! Facade crate for the GEF workspace: re-exports the public API of every
//! member crate so downstream users can depend on a single crate.
//!
//! ```
//! use gef::prelude::*;
//! ```
//!
//! See the workspace `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use gef_baselines as baselines;
pub use gef_core as core;
pub use gef_data as data;
pub use gef_forest as forest;
pub use gef_gam as gam;
pub use gef_linalg as linalg;
pub use gef_par as par;
pub use gef_prof as prof;
pub use gef_serve as serve;
pub use gef_store as store;
pub use gef_trace as trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use gef_baselines::{shap_values, shap_values_batch, LimeConfig, LinearSurrogate};
    pub use gef_core::{
        Degradation, DegradationAction, ExplanationReport, FitFloor, GefConfig, GefExplainer,
        GefExplanation, InteractionStrategy, LocalExplanation, SamplingStrategy,
    };
    pub use gef_data::{Dataset, Task};
    pub use gef_forest::{
        Forest, GbdtParams, GbdtTrainer, Objective, RandomForestParams, RandomForestTrainer,
    };
    pub use gef_gam::{Gam, GamSpec, LambdaSelection, Link, TermSpec};
    pub use gef_serve::{ModelEntry, ServeConfig, Server};
    pub use gef_store::{CacheStats, LoadSource, Store, StoreError};
}
