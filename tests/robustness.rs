//! Fault-injection robustness suite (run with `--features
//! fault-injection`).
//!
//! Exercises every rung of the degradation ladder, the input-hardening
//! paths (label scrubbing, domain-collapse fallback), and PIRLS
//! step-halving, by arming deterministic faults at the sites threaded
//! through the pipeline (see `gef_core::faults`). The fault registry is
//! process-global, so every test serialises behind one mutex and resets
//! the registry on entry and exit.
#![cfg(feature = "fault-injection")]

use gef::core::faults::{self, Trigger};
use gef::core::recovery::{Degradation, DegradationAction};
use gef::core::{GefConfig, GefError, GefExplainer, InteractionStrategy, SamplingStrategy};
use gef::forest::{Forest, GbdtParams, GbdtTrainer, Objective};
use gef::gam::{fit, GamSpec, LambdaSelection, Link, TermSpec};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with exclusive ownership of the (process-global) fault
/// registry, resetting it before and after.
fn with_faults<T>(f: impl FnOnce() -> T) -> T {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::reset();
    let out = f();
    faults::reset();
    out
}

/// A regression forest with genuine pairwise interactions so that a
/// two-tensor GAM spec is the natural explanation.
fn interaction_forest() -> Forest {
    let xs: Vec<Vec<f64>> = (0..900)
        .map(|i| {
            vec![
                (i % 31) as f64 / 31.0,
                (i % 17) as f64 / 17.0,
                (i % 23) as f64 / 23.0,
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] * x[1] + x[1] * x[2] + 0.5 * x[0])
        .collect();
    GbdtTrainer::new(GbdtParams {
        num_trees: 40,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap()
}

/// A binary-classification forest (for the PIRLS paths).
fn classification_forest() -> Forest {
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 41) as f64 / 41.0, (i % 13) as f64 / 13.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(x[0] + 0.5 * x[1] > 0.7))
        .collect();
    GbdtTrainer::new(GbdtParams {
        num_trees: 30,
        num_leaves: 6,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        objective: Objective::BinaryLogistic,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap()
}

/// Pipeline config with two tensor terms, so every ladder rung (drop
/// tensor, shrink, widen λ, univariate-only, linear) is applicable.
fn two_tensor_config() -> GefConfig {
    GefConfig {
        num_univariate: 3,
        num_interactions: 2,
        interaction_strategy: InteractionStrategy::GainPath,
        n_samples: 1500,
        spline_basis: 12,
        tensor_basis: 6,
        ..Default::default()
    }
}

fn assert_finite_fidelity(exp: &gef::core::GefExplanation) {
    assert!(
        exp.fidelity_rmse.is_finite() && exp.fidelity_r2.is_finite(),
        "fidelity must be finite: rmse={} r2={}",
        exp.fidelity_rmse,
        exp.fidelity_r2
    );
}

#[test]
fn clean_run_records_zero_degradations() {
    let forest = interaction_forest();
    with_faults(|| {
        let exp = GefExplainer::new(two_tensor_config())
            .explain(&forest)
            .unwrap();
        assert!(
            exp.degradations.is_empty(),
            "clean run degraded: {:?}",
            exp.degradations
        );
        assert_finite_fidelity(&exp);
        assert!(exp.fidelity_r2 > 0.5, "r2={}", exp.fidelity_r2);
    });
}

/// The expected action label of each ladder rung, in descent order.
const RUNG_LABELS: [&str; 5] = [
    "dropped_tensor",
    "shrunk_bases",
    "widened_lambda_grid",
    "univariate_only",
    "linear_surrogate",
];

#[test]
fn ladder_descends_exactly_one_rung_per_failed_attempt() {
    let forest = interaction_forest();
    for rungs in 1..=5usize {
        let exp = with_faults(|| {
            // The ladder publishes its attempt index as the fault stage,
            // so StageBelow(r) fails exactly the first r attempts.
            faults::arm(faults::CHOL_FACTOR, Trigger::StageBelow(rungs as u32));
            GefExplainer::new(two_tensor_config()).explain(&forest)
        })
        .unwrap_or_else(|e| panic!("rungs={rungs}: {e}"));
        let labels: Vec<&str> = exp.degradations.iter().map(|d| d.action.label()).collect();
        assert_eq!(
            labels,
            &RUNG_LABELS[..rungs],
            "rungs={rungs}: wrong descent"
        );
        assert!(exp.degradations.iter().all(|d| d.stage == "gam_fit"));
        assert!(
            exp.degradations.iter().all(|d| !d.cause.is_empty()),
            "every degradation must carry its cause"
        );
        assert_finite_fidelity(&exp);
    }
}

#[test]
fn exhausted_ladder_reports_recovery_exhausted() {
    let forest = interaction_forest();
    with_faults(|| {
        faults::arm(faults::CHOL_FACTOR, Trigger::Always);
        let err = GefExplainer::new(two_tensor_config())
            .explain(&forest)
            .unwrap_err();
        match err {
            GefError::RecoveryExhausted { attempts, ref last } => {
                // Full spec + all five rungs.
                assert_eq!(attempts, 6);
                assert!(!last.is_empty());
            }
            other => panic!("expected RecoveryExhausted, got: {other}"),
        }
    });
}

#[test]
fn non_finite_forest_labels_are_scrubbed_and_recorded() {
    let forest = interaction_forest();
    with_faults(|| {
        // Exactly the first 50 D* labels become NaN.
        faults::arm(faults::FOREST_PREDICT_NAN, Trigger::FirstN(50));
        let exp = GefExplainer::new(two_tensor_config())
            .explain(&forest)
            .unwrap();
        assert_eq!(
            exp.degradations,
            vec![Degradation {
                stage: "labeling".into(),
                action: DegradationAction::ScrubbedNonFiniteLabels {
                    removed: 50,
                    total: 1500,
                },
                cause: "50 of 1500 forest labels were non-finite".into(),
            }]
        );
        assert_finite_fidelity(&exp);
    });
}

#[test]
fn all_labels_non_finite_is_a_hard_error() {
    let forest = interaction_forest();
    with_faults(|| {
        faults::arm(faults::FOREST_PREDICT_NAN, Trigger::Always);
        let err = GefExplainer::new(two_tensor_config())
            .explain(&forest)
            .unwrap_err();
        assert!(
            matches!(
                err,
                GefError::NonFiniteLabels {
                    removed: 1500,
                    total: 1500
                }
            ),
            "expected NonFiniteLabels, got: {err}"
        );
    });
}

#[test]
fn collapsed_domains_fall_back_to_all_thresholds() {
    let forest = interaction_forest();
    with_faults(|| {
        faults::arm(faults::SAMPLING_DOMAIN_COLLAPSE, Trigger::Always);
        let cfg = GefConfig {
            sampling: SamplingStrategy::EquiSize(8),
            ..two_tensor_config()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        // Every selected feature's strategy domain collapsed; each got
        // its All-Thresholds fallback, recorded — never silently.
        assert_eq!(exp.degradations.len(), exp.selected_features.len());
        for (d, &f) in exp.degradations.iter().zip(&exp.selected_features) {
            assert_eq!(d.stage, "sampling");
            assert_eq!(d.action, DegradationAction::DomainFallback { feature: f });
        }
        // The fallback restored usable domains.
        for &f in &exp.selected_features {
            assert!(exp.domains[f].len() >= 2);
        }
        assert_finite_fidelity(&exp);
    });
}

#[test]
fn pirls_divergence_walks_the_ladder() {
    let forest = classification_forest();
    with_faults(|| {
        // Corrupt every PIRLS solve during the first fit attempt only.
        faults::arm(faults::PIRLS_ITER, Trigger::StageBelow(1));
        let cfg = GefConfig {
            num_univariate: 2,
            num_interactions: 1,
            n_samples: 1200,
            spline_basis: 10,
            tensor_basis: 5,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        assert_eq!(exp.degradations.len(), 1);
        assert_eq!(exp.degradations[0].action.label(), "dropped_tensor");
        assert!(
            exp.degradations[0].cause.contains("PIRLS"),
            "cause should name PIRLS: {}",
            exp.degradations[0].cause
        );
        assert_finite_fidelity(&exp);
    });
}

#[test]
fn pirls_step_halving_recovers_finite_overshoot() {
    // Direct gef-gam fit on near-separable logistic data: an injected
    // finite overshoot on one iteration must be absorbed by
    // step-halving, not fail the fit.
    let xs: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
    let spec = GamSpec {
        link: Link::Logit,
        lambda: LambdaSelection::Fixed(1.0),
        ..GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))])
    };
    let (clean_halvings, faulty) = with_faults(|| {
        let clean = fit(&spec, &xs, &ys).unwrap();
        let clean_halvings = clean.summary().step_halvings;
        faults::arm(faults::PIRLS_STEP, Trigger::Hits(vec![1]));
        (clean_halvings, fit(&spec, &xs, &ys))
    });
    let faulty = faulty.expect("overshoot must be recoverable");
    assert!(
        faulty.summary().step_halvings > clean_halvings,
        "injected overshoot should force extra step-halvings ({} vs {clean_halvings})",
        faulty.summary().step_halvings
    );
    // The recovered fit still separates the classes.
    assert!(faulty.predict(&[0.1]) < 0.5);
    assert!(faulty.predict(&[0.9]) > 0.5);
}

#[test]
fn degradations_survive_the_report_round_trip() {
    let forest = interaction_forest();
    with_faults(|| {
        faults::arm(faults::CHOL_FACTOR, Trigger::StageBelow(2));
        let exp = GefExplainer::new(two_tensor_config())
            .explain(&forest)
            .unwrap();
        assert_eq!(exp.degradations.len(), 2);
        let report = gef::core::ExplanationReport::from_explanation(&exp, None, 11);
        assert_eq!(report.degradations, exp.degradations);
    });
}
