//! Observability suite: the always-on flight recorder and the incident
//! dump pipeline.
//!
//! Two invariants anchor the ops surface:
//!
//! 1. **The recorder never changes results.** The same pipeline run
//!    with the recorder active and with it suppressed must produce
//!    bit-identical explanations, at any thread count — recording is
//!    observation, not participation.
//! 2. **Every typed failure leaves a usable incident.** Under any fault
//!    schedule that ends in a typed `GefError`, a schema-valid dump
//!    must appear whose `replay_faults` string, re-armed verbatim,
//!    reproduces the same typed error (fault-injection builds).
//!
//! The recorder, incident label, fault registry, and thread count are
//! process-global, so every test serialises behind one mutex.

use gef::core::{GefConfig, GefExplainer, SamplingStrategy};
use gef::forest::{Forest, GbdtParams, GbdtTrainer, Objective};
use gef::trace::recorder;
use std::sync::Mutex;

static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with exclusive ownership of the process globals the
/// observability layer touches, restoring benign defaults afterwards.
fn with_globals<T>(f: impl FnOnce() -> T) -> T {
    let _guard = GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    recorder::set_suppressed(false);
    recorder::reset();
    let out = f();
    recorder::set_suppressed(false);
    recorder::reset();
    gef::par::set_threads(1);
    out
}

fn small_forest(objective: Objective) -> Forest {
    let xs: Vec<Vec<f64>> = (0..700)
        .map(|i| vec![(i % 47) as f64 / 47.0, (i % 19) as f64 / 19.0])
        .collect();
    let ys: Vec<f64> = match objective {
        Objective::BinaryLogistic => xs
            .iter()
            .map(|x| f64::from(x[0] + 0.5 * x[1] > 0.7))
            .collect(),
        _ => xs.iter().map(|x| x[0] * 2.0 - x[1] + x[0] * x[1]).collect(),
    };
    GbdtTrainer::new(GbdtParams {
        num_trees: 25,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 8,
        objective,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap()
}

fn small_config() -> GefConfig {
    GefConfig {
        num_univariate: 2,
        num_interactions: 1,
        sampling: SamplingStrategy::EquiSize(40),
        n_samples: 1500,
        spline_basis: 10,
        tensor_basis: 5,
        seed: 11,
        ..Default::default()
    }
}

/// Bit-level fingerprint of everything an explanation computes: probe
/// predictions, fidelity, and the provenance digests (which hash the
/// fitted GAM's coefficients).
fn fingerprint(exp: &gef::core::GefExplanation) -> Vec<u64> {
    let mut out = vec![
        exp.fidelity_rmse.to_bits(),
        exp.fidelity_r2.to_bits(),
        exp.predict(&[0.3, 0.6]).to_bits(),
        exp.predict(&[0.9, 0.1]).to_bits(),
    ];
    out.push(u64::from_str_radix(&exp.provenance.gam_digest, 16).unwrap());
    out.push(u64::from_str_radix(&exp.provenance.forest_digest, 16).unwrap());
    out
}

#[test]
fn recorder_is_always_on_without_trace_env() {
    // The flight recorder runs independently of GEF_TRACE / GEF_PROF:
    // a plain pipeline run must leave span transitions in the ring.
    with_globals(|| {
        let forest = small_forest(Objective::RegressionL2);
        GefExplainer::new(small_config()).explain(&forest).unwrap();
        assert!(
            recorder::event_count() > 0,
            "pipeline run left no flight-recorder events"
        );
        let names: Vec<String> = recorder::snapshot_last(usize::MAX)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert!(
            names.iter().any(|n| n.contains("explain")),
            "recorder window {names:?} has no pipeline span"
        );
    });
}

#[test]
fn suppressing_the_recorder_does_not_change_results() {
    with_globals(|| {
        let forest = small_forest(Objective::RegressionL2);
        let explainer = GefExplainer::new(small_config());
        for threads in [1, 4] {
            gef::par::set_threads(threads);
            recorder::set_suppressed(false);
            recorder::reset();
            let on = explainer.explain(&forest).unwrap();
            assert!(recorder::event_count() > 0);

            recorder::set_suppressed(true);
            recorder::reset();
            let off = explainer.explain(&forest).unwrap();
            assert_eq!(recorder::event_count(), 0, "suppressed recorder recorded");
            recorder::set_suppressed(false);

            assert_eq!(
                fingerprint(&on),
                fingerprint(&off),
                "recorder state changed pipeline outputs at {threads} thread(s)"
            );
            assert_eq!(on.selected_features, off.selected_features);
            assert_eq!(on.interactions, off.interactions);
        }
    });
}

/// Fault-injection half: every typed-error schedule must leave a
/// schema-valid, replayable incident dump.
#[cfg(feature = "fault-injection")]
mod incidents {
    use super::*;
    use gef::core::faults;
    use gef::core::incident;
    use gef::core::RunBudget;
    use gef::trace::json::{parse, JsonValue};
    use std::time::Duration;

    /// Fault schedules expected to push the pipeline into a typed
    /// error (paired with a hard deadline in ms). `pirls.stall=always`
    /// exists precisely to prove deadline enforcement; the NaN
    /// schedules exhaust scrubbing/recovery.
    const SCHEDULES: [(&str, u64); 3] = [
        ("pirls.stall=always", 120),
        ("forest.predict_nan=always", 5_000),
        ("chol.factor=always,pirls.iter=always", 5_000),
    ];

    fn run_under(spec: &str, deadline_ms: u64, forest: &Forest) -> Result<(), gef::core::GefError> {
        faults::reset();
        for (site, trigger) in faults::parse_spec(spec).unwrap() {
            faults::arm(&site, trigger);
        }
        let budget = RunBudget {
            hard_deadline: Some(Duration::from_millis(deadline_ms)),
            soft_deadline: Some(Duration::from_millis(deadline_ms * 4 / 5)),
            ..RunBudget::unlimited()
        };
        let _guard = budget.arm();
        GefExplainer::new(small_config())
            .explain(forest)
            .map(|_| ())
    }

    #[test]
    fn typed_error_schedules_yield_replayable_incidents() {
        with_globals(|| {
            // Route dumps into a scratch dir so the test owns its files.
            let dir = std::env::temp_dir().join(format!("gef-incidents-{}", std::process::id()));
            std::env::set_var("GEF_INCIDENT_DIR", &dir);
            let _ = std::fs::remove_dir_all(&dir);

            let forest = small_forest(Objective::BinaryLogistic);
            let mut typed_errors = 0;
            for (i, (spec, deadline_ms)) in SCHEDULES.iter().enumerate() {
                incident::set_label(&format!("obs-{i}"));
                recorder::reset();
                let Err(err) = run_under(spec, *deadline_ms, &forest) else {
                    faults::reset();
                    continue; // recovered cleanly — nothing to dump
                };
                typed_errors += 1;
                let cause = err.cause_label();

                // A dump exists and is schema-valid.
                let path = incident::dump_path(cause);
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    panic!("schedule {spec:?}: no incident at {}: {e}", path.display())
                });
                let v = parse(&text).expect("incident dump parses as JSON");
                assert_eq!(
                    v.get("schema").and_then(JsonValue::as_str),
                    Some(incident::SCHEMA)
                );
                assert_eq!(v.get("cause").and_then(JsonValue::as_str), Some(cause));
                assert!(v.get("events").and_then(JsonValue::as_array).is_some());
                assert!(v.get("budget").is_some());

                // Its replay string re-arms and reproduces the same
                // typed error — the incident is a working repro, not
                // just a log.
                let replay = v
                    .get("replay_faults")
                    .and_then(JsonValue::as_str)
                    .expect("incident carries replay_faults")
                    .to_string();
                assert!(!replay.is_empty(), "armed schedule rendered empty");
                faults::reset();
                incident::set_label(&format!("obs-{i}-replay"));
                let replayed = run_under(&replay, *deadline_ms, &forest);
                match replayed {
                    Err(e2) => assert_eq!(
                        e2.cause_label(),
                        cause,
                        "replay of {replay:?} changed the failure"
                    ),
                    Ok(()) => panic!("replay of {replay:?} completed cleanly; was `{cause}`"),
                }
                faults::reset();
            }
            assert!(
                typed_errors >= 2,
                "only {typed_errors} schedule(s) produced a typed error — suite is vacuous"
            );

            std::env::remove_var("GEF_INCIDENT_DIR");
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
