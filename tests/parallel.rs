//! Parallel-determinism suite: the gef-par contract says every result
//! is **bit-identical** at any thread count.
//!
//! Each test runs the same workload at `threads = 1` (the serial
//! fallback path, no pool dispatch at all) and `threads = 4` (chunked
//! fan-out over the worker pool) and compares outputs with
//! [`f64::to_bits`] — not a tolerance. The chunk boundaries and ordered
//! reductions in gef-par are derived from input length alone, so any
//! difference here is a real nondeterminism bug.
//!
//! `gef_par::set_threads` is process-global, so every test serialises
//! behind one mutex and restores `threads = 1` on exit.

use gef::data::synthetic::{make_d_prime, NUM_FEATURES};
use gef::gam::fit;
use gef::par;
use gef::prelude::*;
use std::sync::Mutex;

static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with exclusive ownership of the global thread-count setting,
/// restoring serial mode afterwards.
fn with_thread_control<T>(f: impl FnOnce() -> T) -> T {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = f();
    par::set_threads(1);
    out
}

/// Run `f` at a given thread count (inside [`with_thread_control`]).
fn at_threads<T>(t: usize, f: impl FnOnce() -> T) -> T {
    par::set_threads(t);
    let out = f();
    par::set_threads(1);
    out
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// A training set big enough that the histogram build and batched
/// prediction both clear their parallel-dispatch thresholds
/// (`rows × features ≥ 2^14`, `rows × trees ≥ 2^18`).
fn training_data() -> gef::data::Dataset {
    make_d_prime(4_000, 1)
}

fn train(data: &gef::data::Dataset) -> Forest {
    GbdtTrainer::new(GbdtParams {
        num_trees: 80,
        num_leaves: 16,
        learning_rate: 0.1,
        min_data_in_leaf: 10,
        ..Default::default()
    })
    .fit(&data.xs, &data.ys)
    .expect("training succeeds")
}

#[test]
fn forest_training_is_bit_identical_across_thread_counts() {
    with_thread_control(|| {
        let data = training_data();
        let serial = at_threads(1, || train(&data));
        let parallel = at_threads(4, || train(&data));
        assert_eq!(serial.trees.len(), parallel.trees.len());
        // Identical trees ⇒ identical predictions, bit for bit. Predict
        // serially on both so only training differs between the runs.
        let ps: Vec<f64> = data.xs.iter().map(|x| serial.predict(x)).collect();
        let pp: Vec<f64> = data.xs.iter().map(|x| parallel.predict(x)).collect();
        assert_eq!(bits(&ps), bits(&pp));
    });
}

#[test]
fn dstar_labeling_is_bit_identical_across_thread_counts() {
    with_thread_control(|| {
        let data = training_data();
        let forest = at_threads(1, || train(&data));
        // Per-row serial prediction is the reference semantics.
        let reference: Vec<f64> = data.xs.iter().map(|x| forest.predict(x)).collect();
        let serial = at_threads(1, || forest.predict_batch(&data.xs).unwrap());
        let parallel = at_threads(4, || forest.predict_batch(&data.xs).unwrap());
        assert_eq!(bits(&serial), bits(&reference));
        assert_eq!(bits(&parallel), bits(&reference));
    });
}

#[test]
fn gcv_lambda_selection_is_bit_identical_across_thread_counts() {
    with_thread_control(|| {
        let xs: Vec<Vec<f64>> = (0..600)
            .map(|i| vec![(i % 97) as f64 / 97.0, (i % 41) as f64 / 41.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (6.0 * x[0]).sin() + x[1] * x[1])
            .collect();
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
        ]);
        let serial = at_threads(1, || fit(&spec, &xs, &ys).unwrap());
        let parallel = at_threads(4, || fit(&spec, &xs, &ys).unwrap());
        assert_eq!(
            serial.summary().lambda.to_bits(),
            parallel.summary().lambda.to_bits(),
            "λ selection must not depend on thread count"
        );
        assert_eq!(
            serial.summary().gcv.to_bits(),
            parallel.summary().gcv.to_bits()
        );
        assert_eq!(
            serial.summary().edf.to_bits(),
            parallel.summary().edf.to_bits()
        );
        let ps = serial.predict_batch(&xs);
        let pp = parallel.predict_batch(&xs);
        assert_eq!(bits(&ps), bits(&pp));
    });
}

#[test]
fn full_pipeline_explanation_is_bit_identical_across_thread_counts() {
    with_thread_control(|| {
        let data = training_data();
        let forest = at_threads(1, || train(&data));
        let explain = || {
            GefExplainer::new(GefConfig {
                num_univariate: NUM_FEATURES,
                num_interactions: 1,
                sampling: SamplingStrategy::EquiSize(400),
                n_samples: 6_000,
                seed: 3,
                ..Default::default()
            })
            .explain(&forest)
            .expect("pipeline succeeds")
        };
        let serial = at_threads(1, explain);
        let parallel = at_threads(4, explain);

        assert_eq!(serial.selected_features, parallel.selected_features);
        assert_eq!(
            serial.gam.summary().lambda.to_bits(),
            parallel.gam.summary().lambda.to_bits()
        );
        assert_eq!(
            serial.fidelity_rmse.to_bits(),
            parallel.fidelity_rmse.to_bits()
        );
        assert_eq!(serial.fidelity_r2.to_bits(), parallel.fidelity_r2.to_bits());
        // The degradation ladder (none expected here, but compared
        // structurally either way) must also be thread-count-invariant.
        assert_eq!(serial.degradations, parallel.degradations);
        let ps: Vec<f64> = data.xs.iter().map(|x| serial.predict(x)).collect();
        let pp: Vec<f64> = data.xs.iter().map(|x| parallel.predict(x)).collect();
        assert_eq!(bits(&ps), bits(&pp));
    });
}

/// A panicking task inside a four-thread region must come back as the
/// typed `GefError::WorkerPanicked` (the runtime never re-raises the
/// payload), and the pool must stay usable — and bit-identical across
/// thread counts — afterwards.
#[test]
fn worker_panic_surfaces_typed_error_and_pool_stays_deterministic() {
    use gef::core::GefError;

    with_thread_control(|| {
        let err = at_threads(4, || {
            par::for_each_index(64, par::Options::default(), |i| {
                assert!(i != 23, "injected worker panic");
            })
            .map_err(GefError::from)
            .expect_err("the panicking region must fail")
        });
        match &err {
            GefError::WorkerPanicked(payload) => assert!(
                payload.contains("injected worker panic"),
                "payload should carry the panic message: {payload:?}"
            ),
            other => panic!("expected WorkerPanicked, got: {other}"),
        }

        // The pool is not poisoned: the same forest workload still runs
        // and stays bit-identical between serial and four threads.
        let data = training_data();
        let forest = at_threads(1, || train(&data));
        let serial = at_threads(1, || forest.predict_batch(&data.xs).unwrap());
        let parallel = at_threads(4, || forest.predict_batch(&data.xs).unwrap());
        assert_eq!(bits(&serial), bits(&parallel));
    });
}

/// Acceptance check for the run budget: with the `pirls.stall` site
/// wedging every PIRLS iteration (a 5ms sleep each), a hard deadline
/// must abort the run with the typed `DeadlineExceeded` — never a hang
/// — at any thread count. The 60ms deadline sits below the stall cost
/// of even a minimal successful fit (13 λ candidates × ≥1 stalled
/// iteration × 5ms = 65ms of pure sleep), so no machine can outrun it.
#[cfg(feature = "fault-injection")]
#[test]
fn pirls_stall_hits_the_hard_deadline_instead_of_hanging() {
    use gef::core::faults::{self, Trigger};
    use gef::core::{GefError, RunBudget};
    use std::time::{Duration, Instant};

    // A binary-classification forest so the logit PIRLS loop (where the
    // stall site lives) actually runs.
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 41) as f64 / 41.0, (i % 13) as f64 / 13.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(x[0] + 0.5 * x[1] > 0.7))
        .collect();
    with_thread_control(|| {
        let forest = at_threads(1, || {
            GbdtTrainer::new(GbdtParams {
                num_trees: 30,
                num_leaves: 6,
                learning_rate: 0.2,
                min_data_in_leaf: 5,
                objective: Objective::BinaryLogistic,
                ..Default::default()
            })
            .fit(&xs, &ys)
            .unwrap()
        });
        for t in [1, 4] {
            faults::reset();
            faults::arm(faults::PIRLS_STALL, Trigger::Always);
            let budget = RunBudget {
                hard_deadline: Some(Duration::from_millis(60)),
                ..RunBudget::unlimited()
            };
            let start = Instant::now();
            let result = at_threads(t, || {
                let _armed = budget.arm();
                GefExplainer::new(GefConfig {
                    num_univariate: 2,
                    num_interactions: 1,
                    n_samples: 1_500,
                    spline_basis: 10,
                    tensor_basis: 5,
                    ..Default::default()
                })
                .explain(&forest)
            });
            let elapsed = start.elapsed();
            faults::reset();
            match result {
                Err(GefError::DeadlineExceeded { .. }) => {}
                Err(other) => panic!("threads={t}: expected DeadlineExceeded, got: {other}"),
                Ok(_) => panic!("threads={t}: the stalled run outran its deadline"),
            }
            assert!(
                elapsed < Duration::from_secs(20),
                "threads={t}: deadline abort must not hang (took {elapsed:?})"
            );
        }
    });
}

/// With a fault armed, gef-par falls back to serial dispatch (fault
/// triggers are hit-counted, so ordering must not depend on worker
/// interleaving): the whole run — hit counts, fired counts, and the
/// resulting degradation ladder — must be identical at any thread
/// count.
#[cfg(feature = "fault-injection")]
#[test]
fn fault_ordering_is_invariant_across_thread_counts() {
    use gef::core::faults::{self, Trigger};

    // PIRLS only runs for logit links, so use a binary-classification
    // forest (same shape as the robustness suite's).
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 41) as f64 / 41.0, (i % 13) as f64 / 13.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(x[0] + 0.5 * x[1] > 0.7))
        .collect();
    with_thread_control(|| {
        let forest = at_threads(1, || {
            GbdtTrainer::new(GbdtParams {
                num_trees: 30,
                num_leaves: 6,
                learning_rate: 0.2,
                min_data_in_leaf: 5,
                objective: Objective::BinaryLogistic,
                ..Default::default()
            })
            .fit(&xs, &ys)
            .unwrap()
        });
        let run = || {
            faults::reset();
            faults::arm(faults::PIRLS_ITER, Trigger::StageBelow(1));
            let exp = GefExplainer::new(GefConfig {
                num_univariate: 2,
                num_interactions: 1,
                n_samples: 1_500,
                spline_basis: 10,
                tensor_basis: 5,
                ..Default::default()
            })
            .explain(&forest)
            .expect("pipeline degrades gracefully");
            let counts = (
                faults::hit_count(faults::PIRLS_ITER),
                faults::fired_count(faults::PIRLS_ITER),
            );
            faults::reset();
            (exp, counts)
        };
        let (serial, serial_counts) = at_threads(1, run);
        let (parallel, parallel_counts) = at_threads(4, run);

        assert_eq!(serial_counts, parallel_counts, "fault hit/fire counts");
        assert!(serial_counts.1 > 0, "the armed fault must actually fire");
        assert_eq!(serial.degradations, parallel.degradations);
        assert!(!serial.degradations.is_empty(), "ladder must engage");
        assert_eq!(
            serial.gam.summary().lambda.to_bits(),
            parallel.gam.summary().lambda.to_bits()
        );
        assert_eq!(
            serial.fidelity_rmse.to_bits(),
            parallel.fidelity_rmse.to_bits()
        );
    });
}
