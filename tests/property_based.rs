//! Property-based tests on cross-crate invariants, using proptest to
//! generate random forests, datasets, and instances.

use gef::baselines::treeshap::{brute_force_shap, shap_values};
use gef::forest::io::{from_json, from_text, to_json, to_text};
use gef::forest::tree::{Node, Tree};
use gef::prelude::*;
use proptest::prelude::*;

/// Generate a random valid binary tree with `depth` levels on `d`
/// features, with consistent covers.
fn arb_tree(d: usize, max_depth: u32) -> impl Strategy<Value = Tree> {
    // Recursive strategy: a leaf or a split with two subtrees.
    let leaf = (any::<i16>(), 1u32..50).prop_map(|(v, c)| Tree {
        nodes: vec![Node::leaf(v as f64 / 100.0, c)],
    });
    leaf.prop_recursive(max_depth, 64, 2, move |inner| {
        (inner.clone(), inner, 0..d, any::<i16>(), 0.0f64..10.0).prop_map(
            |(left, right, feature, thr, gain)| {
                // Merge: re-index children into a single node array.
                let mut nodes = Vec::with_capacity(1 + left.nodes.len() + right.nodes.len());
                let count: u32 = left.nodes[0].count + right.nodes[0].count;
                nodes.push(Node::split(
                    feature,
                    thr as f64 / 100.0,
                    1,
                    1 + left.nodes.len() as u32,
                    gain,
                    count,
                ));
                let off = 1u32;
                for n in &left.nodes {
                    let mut n = *n;
                    if !n.is_leaf() {
                        n.left += off;
                        n.right += off;
                    }
                    nodes.push(n);
                }
                let off = 1 + left.nodes.len() as u32;
                for n in &right.nodes {
                    let mut n = *n;
                    if !n.is_leaf() {
                        n.left += off;
                        n.right += off;
                    }
                    nodes.push(n);
                }
                Tree { nodes }
            },
        )
    })
}

fn arb_forest(d: usize) -> impl Strategy<Value = Forest> {
    (proptest::collection::vec(arb_tree(d, 4), 1..5), -10i16..10).prop_map(move |(trees, base)| {
        Forest::new(trees, base as f64 / 10.0, 1.0, Objective::RegressionL2, d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_trees_are_structurally_valid(tree in arb_tree(3, 5)) {
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    }

    #[test]
    fn forest_io_round_trips(forest in arb_forest(3)) {
        let text = to_text(&forest);
        let parsed = from_text(&text).expect("text parses");
        let json = to_json(&forest);
        let jparsed = from_json(&json).expect("json parses");
        for x in [[0.0, 0.5, 1.0], [0.25, 0.25, 0.25], [-1.0, 2.0, 0.1]] {
            let p = forest.predict(&x);
            prop_assert_eq!(p, parsed.predict(&x));
            prop_assert_eq!(p, jparsed.predict(&x));
        }
    }

    #[test]
    fn treeshap_local_accuracy_on_random_forests(
        forest in arb_forest(3),
        x0 in 0.0f64..1.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let x = [x0, x1, x2];
        let (phi, base) = shap_values(&forest, &x);
        let total = base + phi.iter().sum::<f64>();
        prop_assert!(
            (total - forest.predict_raw(&x)).abs() < 1e-8,
            "local accuracy: {} vs {}", total, forest.predict_raw(&x)
        );
    }

    #[test]
    fn treeshap_matches_brute_force_on_random_trees(
        tree in arb_tree(3, 4),
        x0 in 0.0f64..1.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let forest = Forest::new(vec![tree.clone()], 0.0, 1.0, Objective::RegressionL2, 3);
        let x = [x0, x1, x2];
        let (fast, _) = shap_values(&forest, &x);
        let slow = brute_force_shap(&tree, &x, 3);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-9, "fast={:?} slow={:?}", fast, slow);
        }
    }

    #[test]
    fn sampling_domains_sorted_within_extended_range(
        mut thresholds in proptest::collection::vec(-100.0f64..100.0, 1..60),
        k in 1usize..40,
    ) {
        thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        thresholds.dedup();
        let lo = thresholds[0];
        let hi = thresholds[thresholds.len() - 1];
        let eps = 0.05 * (hi - lo).max(lo.abs().max(1.0));
        for strategy in [
            SamplingStrategy::AllThresholds,
            SamplingStrategy::KQuantile(k),
            SamplingStrategy::EquiWidth(k),
            SamplingStrategy::KMeans(k),
            SamplingStrategy::EquiSize(k),
        ] {
            let d = strategy.domain(&thresholds);
            prop_assert!(!d.is_empty());
            for w in d.windows(2) {
                prop_assert!(w[0] < w[1], "{} domain unsorted", strategy.name());
            }
            for &v in &d {
                prop_assert!(
                    v >= lo - eps - 1e-9 && v <= hi + eps + 1e-9,
                    "{} produced {} outside [{}, {}]",
                    strategy.name(), v, lo - eps, hi + eps
                );
            }
        }
    }

    #[test]
    fn gam_decomposition_is_exact(
        seed in 0u64..1000,
        x0 in 0.0f64..1.0,
        x1 in 0.0f64..1.0,
    ) {
        // Small fixed GAM; the additive decomposition must hold for any
        // query point.
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let a = ((i as u64).wrapping_mul(seed + 7) % 101) as f64 / 101.0;
                let b = ((i as u64).wrapping_mul(seed + 31) % 89) as f64 / 89.0;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] - r[1]).collect();
        let gam = gef::gam::fit(
            &GamSpec {
                lambda: LambdaSelection::Fixed(1.0),
                ..GamSpec::regression(vec![
                    TermSpec::spline(0, (0.0, 1.0)),
                    TermSpec::spline(1, (0.0, 1.0)),
                ])
            },
            &xs,
            &ys,
        )
        .expect("fit succeeds");
        let x = [x0, x1];
        let sum = gam.effective_intercept() + gam.component(0, &x) + gam.component(1, &x);
        prop_assert!((sum - gam.predict_raw(&x)).abs() < 1e-9);
    }
}
