//! Integration tests for the GEF_PROF timeline profiler: the Chrome
//! Trace Event Format export must round-trip through `gef_trace::json`,
//! carry every field the chrome://tracing / Perfetto loaders require,
//! and key its tracks by *logical* worker id so the same worker index
//! is the same `tid` at any thread count.

use gef_trace::json::{parse, JsonValue};
use gef_trace::timeline;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Timeline state is process-global; serialize the tests in this
/// binary.
static PROF_LOCK: Mutex<()> = Mutex::new(());

/// Run a profiled parallel workload at the given thread count and
/// return the set of tids that recorded events.
fn profiled_workload(threads: usize) -> BTreeSet<u64> {
    gef_par::set_threads(threads);
    gef_par::prestart();
    timeline::reset();
    let data: Vec<f64> = (0..4096).map(|i| i as f64).collect();
    let out = gef_par::map(
        data.len(),
        gef_par::Options::coarse().with_label("profiler.test_task"),
        |i| data[i] * 2.0,
    );
    assert_eq!(out.expect("map succeeds")[10], 20.0);
    timeline::tids_with_events().into_iter().collect()
}

#[test]
fn chrome_trace_round_trips_with_required_ctf_fields() {
    let _g = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    timeline::set_prof_enabled(true);
    profiled_workload(4);
    gef_trace::time("profiler.outer_span", || {
        gef_trace::global().event("profiler.marker", &[("k", 1.0)]);
    });
    let json = timeline::chrome_trace_json();
    timeline::set_prof_enabled(false);
    timeline::reset();

    // The export must be valid JSON parseable by our own reader (which
    // is strict RFC 8259 — what Perfetto and chrome://tracing accept).
    let doc = parse(&json).expect("chrome trace JSON parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut saw_begin = false;
    let mut saw_end = false;
    let mut saw_instant = false;
    let mut prev_ts = f64::NEG_INFINITY;
    for e in events {
        // Required CTF fields on every record.
        let name = e.get("name").and_then(JsonValue::as_str).expect("name");
        assert!(!name.is_empty());
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(
            matches!(ph, "B" | "E" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("pid").and_then(JsonValue::as_f64).is_some());
        assert!(e.get("tid").and_then(JsonValue::as_f64).is_some());
        if ph != "M" {
            let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
            assert!(ts >= 0.0);
            assert!(ts >= prev_ts, "events must be sorted by timestamp");
            prev_ts = ts;
        }
        match ph {
            "B" => saw_begin = true,
            "E" => saw_end = true,
            "i" => {
                saw_instant = true;
                // Chrome requires a scope on instants.
                assert_eq!(e.get("s").and_then(JsonValue::as_str), Some("t"));
            }
            _ => {}
        }
    }
    assert!(saw_begin && saw_end, "span begin/end pairs missing");
    assert!(saw_instant, "mirrored telemetry event missing");

    // Per-tid begin/end events balance, so chrome's stack view can
    // always close what it opened.
    let mut depth: std::collections::BTreeMap<i64, i64> = Default::default();
    for e in events {
        let tid = e.get("tid").and_then(JsonValue::as_f64).unwrap() as i64;
        match e.get("ph").and_then(JsonValue::as_str).unwrap() {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without matching B on tid {tid}");
            }
            _ => {}
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced B/E: {depth:?}");

    // Every tid with events has a thread_name metadata record.
    let tids: BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) != Some("M"))
        .map(|e| e.get("tid").and_then(JsonValue::as_f64).unwrap() as i64)
        .collect();
    let named: BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .map(|e| e.get("tid").and_then(JsonValue::as_f64).unwrap() as i64)
        .collect();
    for tid in &tids {
        assert!(named.contains(tid), "tid {tid} has no thread_name metadata");
    }
}

#[test]
fn worker_tids_are_stable_across_thread_counts() {
    let _g = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    timeline::set_prof_enabled(true);

    // GEF_THREADS=1: the serial bypass runs every task on the calling
    // thread — no worker tids (1..=999) may appear.
    let t1 = profiled_workload(1);
    assert_eq!(t1.len(), 1, "serial run must use exactly one track");
    let serial_tid = *t1.iter().next().unwrap();
    assert!(
        serial_tid == 0 || serial_tid >= 1000,
        "serial run recorded on a worker tid ({serial_tid})"
    );

    // GEF_THREADS=4: three pool workers (the coordinator is the fourth
    // lane) hold the reserved tids 1..=3 — worker k is tid k+1 by spawn
    // order, independent of which OS thread backs it. Chunk claiming is
    // racy by design: under scheduler load the coordinator can drain
    // every chunk before a worker wakes, so retry a few times until at
    // least one worker track appears.
    let t4 = std::iter::repeat_with(|| profiled_workload(4))
        .take(20)
        .find(|t| t.iter().any(|t| (1..1000).contains(t)))
        .unwrap_or_default();
    let workers: BTreeSet<u64> = t4
        .iter()
        .copied()
        .filter(|&t| (1..1000).contains(&t))
        .collect();
    assert!(
        !workers.is_empty(),
        "20 parallel runs recorded no worker tracks"
    );
    assert!(
        workers.iter().all(|&t| t <= 3),
        "worker tids exceed spawn count: {workers:?}"
    );

    // Stability: a repeat run may land tasks on a different *subset* of
    // workers (claiming is racy by design), but never mints a tid
    // outside the reserved worker range. The coordinator participates
    // only when it wins a chunk — also racy — so its track may be
    // absent from either run, but when present it is always the same
    // single tid as before.
    let t4_again = profiled_workload(4);
    let workers_again: BTreeSet<u64> = t4_again
        .iter()
        .copied()
        .filter(|&t| (1..1000).contains(&t))
        .collect();
    assert!(
        workers_again.iter().all(|&t| t <= 3),
        "repeat run minted a new worker tid: {workers_again:?}"
    );
    let coords: BTreeSet<u64> = t4.difference(&workers).copied().collect();
    let coords_again: BTreeSet<u64> = t4_again.difference(&workers_again).copied().collect();
    assert!(
        coords.len() <= 1 && coords_again.len() <= 1,
        "more than one coordinator track: {coords:?} / {coords_again:?}"
    );
    if let (Some(a), Some(b)) = (coords.iter().next(), coords_again.iter().next()) {
        assert_eq!(a, b, "coordinator track changed between identical runs");
    }

    timeline::set_prof_enabled(false);
    timeline::reset();
    gef_par::set_threads(1);
}
