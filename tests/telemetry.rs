//! Integration test for the gef-trace instrumentation of the full
//! pipeline: a complete `GefExplainer::explain` run must emit all five
//! stage spans with nonzero durations, and the PIRLS iteration count
//! recorded by gef-trace must agree with the `FitSummary`.
//!
//! Also proves the observation-only contract: with tracing *and*
//! profiling off the pipeline records nothing and its numeric outputs
//! are bit-identical to a fully instrumented run, and the disabled
//! span fast path is cheap enough to leave in hot loops.

use gef_core::{GefConfig, GefExplainer};
use gef_forest::{Forest, GbdtParams, GbdtTrainer};
use std::sync::Mutex;

/// Tracing/profiling state is process-global and the tests in this
/// binary toggle it; serialize them.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// The five pipeline stages, in execution order.
const STAGES: [&str; 5] = [
    "pipeline.selection",
    "pipeline.sampling",
    "pipeline.generate",
    "pipeline.interactions",
    "pipeline.gam_fit",
];

#[test]
fn explain_emits_all_stage_spans_and_consistent_pirls_count() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Enable tracing for this process and start from a clean registry.
    gef_trace::set_enabled(true);
    gef_trace::global().reset();

    let xs: Vec<Vec<f64>> = (0..900)
        .map(|i| {
            vec![
                (i % 47) as f64 / 47.0,
                (i % 31) as f64 / 31.0,
                (i % 13) as f64 / 13.0,
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] - x[1] + 0.5 * x[0] * x[2])
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 30,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap();

    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        num_interactions: 1,
        n_samples: 3000,
        ..Default::default()
    })
    .explain(&forest)
    .unwrap();

    let t = gef_trace::global();

    // Every stage span fired exactly once with a nonzero duration.
    // Stages run nested under `pipeline.explain`, so match on the leaf
    // segment of the hierarchical span path.
    for stage in STAGES {
        assert_eq!(t.span_leaf_count(stage), 1, "span {stage} should fire once");
        assert!(
            t.span_leaf_total_ns(stage) > 0,
            "span {stage} has zero duration"
        );
    }
    // The wrapper span covers the whole run.
    assert_eq!(t.span_count("pipeline.explain"), 1);
    let stage_sum: u64 = STAGES.iter().map(|s| t.span_leaf_total_ns(s)).sum();
    assert!(t.span_total_ns("pipeline.explain") >= stage_sum);

    // The always-on StageTimings agree with the trace (same stages ran).
    assert!(exp.telemetry.generate_ns > 0);
    assert!(exp.telemetry.gam_fit_ns > 0);
    assert!(exp.telemetry.total_ns() <= t.span_total_ns("pipeline.explain"));

    // FitSummary's PIRLS iteration count matches the recorded gauge.
    let recorded = t.gauge_value("gam.pirls_iters").expect("gauge recorded");
    assert_eq!(recorded, exp.gam.summary().pirls_iters as f64);

    // Forest labeling was counted: one D* row costs at least one node
    // visit per tree queried.
    assert!(t.counter_value("forest.nodes_visited") > 0);
    assert_eq!(t.counter_value("core.dstar_rows"), 3000);

    // Per-lambda GCV events carry the model-selection trail.
    let gcv_events = t.events_named("gam.gcv");
    assert!(!gcv_events.is_empty(), "no gam.gcv events recorded");
    for ev in &gcv_events {
        let has = |k: &str| ev.fields.iter().any(|(n, _)| n == k);
        assert!(has("lambda") && has("gcv") && has("edf") && has("deviance"));
    }

    // The JSON snapshot is valid and mentions every stage span.
    let report = t.snapshot("telemetry-integration");
    let json = report.to_json();
    gef_trace::json::validate(&json).expect("snapshot JSON must be valid");
    for stage in STAGES {
        assert!(json.contains(stage), "JSON report missing {stage}");
    }
    // Timing aggregates now carry the full percentile ladder.
    assert!(json.contains("\"p50_ns\":"));
    assert!(json.contains("\"p95_ns\":"));
    assert!(json.contains("\"p99_ns\":"));
}

/// A small deterministic forest + config pair shared by the
/// observation-only tests below.
fn small_problem() -> (Forest, GefConfig) {
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 41) as f64 / 41.0, (i % 17) as f64 / 17.0])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 1.5 - 0.7 * x[1]).collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 20,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap();
    let config = GefConfig {
        num_univariate: 2,
        num_interactions: 1,
        n_samples: 2000,
        seed: 11,
        ..Default::default()
    };
    (forest, config)
}

/// With `GEF_TRACE` and `GEF_PROF` both off the pipeline must record
/// *nothing* — no telemetry, no timeline events — and produce outputs
/// bit-identical to a run with both fully on: the instrumentation
/// observes, it never participates.
#[test]
fn disabled_observability_records_nothing_and_outputs_are_bit_identical() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (forest, config) = small_problem();
    let probe: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![i as f64 / 50.0, 1.0 - i as f64 / 50.0])
        .collect();

    // Everything off, clean slates.
    gef_trace::set_enabled(false);
    gef_trace::timeline::set_prof_enabled(false);
    gef_trace::global().reset();
    gef_trace::timeline::reset();
    let events_before = gef_trace::timeline::event_count();
    let off = GefExplainer::new(config.clone()).explain(&forest).unwrap();
    assert_eq!(
        gef_trace::timeline::event_count(),
        events_before,
        "disabled profiling must not record timeline events"
    );
    let t = gef_trace::global();
    assert_eq!(t.span_count("pipeline.explain"), 0);
    assert!(t.events_named("gam.gcv").is_empty());

    // Everything on: tracing, timeline, the works.
    gef_trace::set_enabled(true);
    gef_trace::timeline::set_prof_enabled(true);
    let on = GefExplainer::new(config).explain(&forest).unwrap();
    assert!(
        gef_trace::timeline::event_count() > 0,
        "enabled profiling should record timeline events"
    );

    // Numeric outputs must agree to the bit.
    assert_eq!(off.fidelity_rmse.to_bits(), on.fidelity_rmse.to_bits());
    assert_eq!(off.fidelity_r2.to_bits(), on.fidelity_r2.to_bits());
    for x in &probe {
        assert_eq!(
            off.gam.predict(x).to_bits(),
            on.gam.predict(x).to_bits(),
            "GAM prediction differs between instrumented and dark runs"
        );
    }

    gef_trace::timeline::set_prof_enabled(false);
    gef_trace::set_enabled(false);
    gef_trace::global().reset();
    gef_trace::timeline::reset();
}

/// The disabled span path must stay cheap enough to leave on every hot
/// loop: one early-out branch, no allocation, no clock read. A million
/// disabled spans in a debug build finishing inside two seconds bounds
/// the fast path at ~2µs apiece — two orders of magnitude above its
/// real cost, so the assertion only fires if the fast path regresses to
/// doing real work (allocating, taking a lock, reading the clock).
#[test]
fn disabled_span_fast_path_is_cheap() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    gef_trace::set_enabled(false);
    gef_trace::timeline::set_prof_enabled(false);
    let t0 = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..1_000_000u64 {
        acc = acc.wrapping_add(gef_trace::time("micro.disabled_span", || i));
    }
    let elapsed = t0.elapsed();
    assert_eq!(acc, 499_999_500_000);
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "1M disabled spans took {elapsed:?} — the disabled fast path has regressed"
    );
}
