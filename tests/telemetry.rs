//! Integration test for the gef-trace instrumentation of the full
//! pipeline: a complete `GefExplainer::explain` run must emit all five
//! stage spans with nonzero durations, and the PIRLS iteration count
//! recorded by gef-trace must agree with the `FitSummary`.

use gef_core::{GefConfig, GefExplainer};
use gef_forest::{GbdtParams, GbdtTrainer};

/// The five pipeline stages, in execution order.
const STAGES: [&str; 5] = [
    "pipeline.selection",
    "pipeline.sampling",
    "pipeline.generate",
    "pipeline.interactions",
    "pipeline.gam_fit",
];

#[test]
fn explain_emits_all_stage_spans_and_consistent_pirls_count() {
    // Enable tracing for this process and start from a clean registry.
    gef_trace::set_enabled(true);
    gef_trace::global().reset();

    let xs: Vec<Vec<f64>> = (0..900)
        .map(|i| {
            vec![
                (i % 47) as f64 / 47.0,
                (i % 31) as f64 / 31.0,
                (i % 13) as f64 / 13.0,
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] - x[1] + 0.5 * x[0] * x[2])
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 30,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap();

    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        num_interactions: 1,
        n_samples: 3000,
        ..Default::default()
    })
    .explain(&forest)
    .unwrap();

    let t = gef_trace::global();

    // Every stage span fired exactly once with a nonzero duration.
    // Stages run nested under `pipeline.explain`, so match on the leaf
    // segment of the hierarchical span path.
    for stage in STAGES {
        assert_eq!(t.span_leaf_count(stage), 1, "span {stage} should fire once");
        assert!(
            t.span_leaf_total_ns(stage) > 0,
            "span {stage} has zero duration"
        );
    }
    // The wrapper span covers the whole run.
    assert_eq!(t.span_count("pipeline.explain"), 1);
    let stage_sum: u64 = STAGES.iter().map(|s| t.span_leaf_total_ns(s)).sum();
    assert!(t.span_total_ns("pipeline.explain") >= stage_sum);

    // The always-on StageTimings agree with the trace (same stages ran).
    assert!(exp.telemetry.generate_ns > 0);
    assert!(exp.telemetry.gam_fit_ns > 0);
    assert!(exp.telemetry.total_ns() <= t.span_total_ns("pipeline.explain"));

    // FitSummary's PIRLS iteration count matches the recorded gauge.
    let recorded = t.gauge_value("gam.pirls_iters").expect("gauge recorded");
    assert_eq!(recorded, exp.gam.summary().pirls_iters as f64);

    // Forest labeling was counted: one D* row costs at least one node
    // visit per tree queried.
    assert!(t.counter_value("forest.nodes_visited") > 0);
    assert_eq!(t.counter_value("core.dstar_rows"), 3000);

    // Per-lambda GCV events carry the model-selection trail.
    let gcv_events = t.events_named("gam.gcv");
    assert!(!gcv_events.is_empty(), "no gam.gcv events recorded");
    for ev in &gcv_events {
        let has = |k: &str| ev.fields.iter().any(|(n, _)| n == k);
        assert!(has("lambda") && has("gcv") && has("edf") && has("deviance"));
    }

    // The JSON snapshot is valid and mentions every stage span.
    let report = t.snapshot("telemetry-integration");
    let json = report.to_json();
    gef_trace::json::validate(&json).expect("snapshot JSON must be valid");
    for stage in STAGES {
        assert!(json.contains(stage), "JSON report missing {stage}");
    }
}
