//! End-to-end integration tests: the full paper pipeline on the
//! paper's synthetic generators, across crate boundaries.

use gef::data::metrics::{r2, rmse};
use gef::data::synthetic::{generator, make_d_prime, NUM_FEATURES};
use gef::prelude::*;

fn paper_forest(xs: &[Vec<f64>], ys: &[f64]) -> Forest {
    let cut = xs.len() * 3 / 4;
    GbdtTrainer::new(GbdtParams {
        num_trees: 150,
        num_leaves: 32,
        learning_rate: 0.08,
        early_stopping_rounds: Some(30),
        ..Default::default()
    })
    .fit_with_valid(&xs[..cut], &ys[..cut], &xs[cut..], &ys[cut..])
    .expect("training succeeds")
}

#[test]
fn gef_reconstructs_g_prime_components() {
    let data = make_d_prime(6_000, 1);
    let (train, test) = data.train_test_split(0.8, 2);
    let forest = paper_forest(&train.xs, &train.ys);

    let exp = GefExplainer::new(GefConfig {
        num_univariate: NUM_FEATURES,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(1_000),
        n_samples: 30_000,
        seed: 3,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");

    // High fidelity to the forest on held-out D*.
    assert!(exp.fidelity_r2 > 0.93, "fidelity r2 = {}", exp.fidelity_r2);

    // The surrogate is accurate on the *original* test data too
    // (Table 2's point).
    let gam_preds: Vec<f64> = test.xs.iter().map(|x| exp.predict(x)).collect();
    let forest_preds = forest.predict_batch(&test.xs).unwrap();
    assert!(
        r2(&gam_preds, &forest_preds) > 0.9,
        "r2 vs forest = {}",
        r2(&gam_preds, &forest_preds)
    );
    assert!(
        r2(&gam_preds, &test.ys) > 0.85,
        "r2 vs labels = {}",
        r2(&gam_preds, &test.ys)
    );

    // Component reconstruction: each learned spline matches the
    // centered true generator away from the margins (Fig. 4's point).
    for &f in &exp.selected_features {
        let curve = exp.component_curve(f, 41).expect("curve exists");
        let interior: Vec<_> = curve
            .iter()
            .filter(|&&(v, ..)| (0.1..=0.9).contains(&v))
            .collect();
        assert!(interior.len() > 10, "curve too short for x{f}");
        let truth: Vec<f64> = interior.iter().map(|&&(v, ..)| generator(f, v)).collect();
        let t_mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let est: Vec<f64> = interior.iter().map(|&&(_, e, ..)| e).collect();
        let centered: Vec<f64> = truth.iter().map(|t| t - t_mean).collect();
        let err = rmse(&est, &centered);
        assert!(err < 0.25, "component x{f} reconstruction rmse = {err}");
    }
}

#[test]
fn gef_handles_forest_roundtripped_through_model_file() {
    // Third-party scenario: the explainer only sees the serialized
    // model (the paper's certification-authority setting).
    let data = make_d_prime(3_000, 7);
    let forest = paper_forest(&data.xs, &data.ys);
    let text = gef::forest::io::to_text(&forest);
    let parsed = gef::forest::io::from_text(&text).expect("round trip parses");

    let cfg = GefConfig {
        num_univariate: NUM_FEATURES,
        n_samples: 10_000,
        ..Default::default()
    };
    let from_original = GefExplainer::new(cfg.clone()).explain(&forest).unwrap();
    let from_parsed = GefExplainer::new(cfg).explain(&parsed).unwrap();
    // Identical model structure -> identical explanation.
    assert_eq!(
        from_original.selected_features,
        from_parsed.selected_features
    );
    let x = [0.3, 0.5, 0.7, 0.2, 0.9];
    assert!((from_original.predict(&x) - from_parsed.predict(&x)).abs() < 1e-12);
}

#[test]
fn gef_explains_random_forests_too() {
    // The paper's future work: nothing in GEF assumes boosting.
    let data = make_d_prime(3_000, 11);
    let rf = RandomForestTrainer::new(RandomForestParams {
        num_trees: 60,
        max_depth: Some(10),
        min_samples_leaf: 4,
        seed: 3,
        ..Default::default()
    })
    .fit(&data.xs, &data.ys)
    .expect("rf trains");
    let exp = GefExplainer::new(GefConfig {
        num_univariate: NUM_FEATURES,
        n_samples: 15_000,
        sampling: SamplingStrategy::EquiSize(500),
        ..Default::default()
    })
    .explain(&rf)
    .expect("pipeline works on RF");
    assert!(
        exp.fidelity_r2 > 0.85,
        "rf fidelity r2 = {}",
        exp.fidelity_r2
    );
}

#[test]
fn classification_pipeline_probability_fidelity() {
    let mut state = 1u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..4_000).map(|_| vec![next(), next()]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(next() < 1.0 / (1.0 + (-(6.0 * (x[0] + x[1] - 1.0))).exp())))
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 80,
        num_leaves: 16,
        learning_rate: 0.1,
        objective: Objective::BinaryLogistic,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("training succeeds");
    let exp = GefExplainer::new(GefConfig {
        num_univariate: 2,
        n_samples: 10_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    // Probabilities within [0,1]; fidelity to the forest in aggregate
    // (pointwise gaps can be large where the smooth GAM crosses the
    // forest's jagged decision boundary).
    let mut abs_err: Vec<f64> = xs
        .iter()
        .take(400)
        .map(|x| {
            let p = exp.predict(x);
            assert!((0.0..=1.0).contains(&p), "p={p}");
            (p - forest.predict_proba(x)).abs()
        })
        .collect();
    abs_err.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean_err = abs_err.iter().sum::<f64>() / abs_err.len() as f64;
    let p95 = abs_err[(abs_err.len() * 95) / 100];
    assert!(mean_err < 0.10, "mean |Δp| = {mean_err}");
    assert!(p95 < 0.35, "95th percentile |Δp| = {p95}");
}
