//! Interaction-detection integration tests: the Fig. 6 / Table 1
//! machinery recovers injected interactions on `D''`.

use gef::core::generate::{build_domains, generate};
use gef::core::interactions::rank_interactions;
use gef::core::selection::ForestProfile;
use gef::data::metrics::average_precision;
use gef::data::synthetic::{make_d_second, NUM_FEATURES};
use gef::prelude::*;

fn forest_on_d_second(pairs: &[(usize, usize)], seed: u64) -> Forest {
    let data = make_d_second(5_000, pairs, seed);
    let cut = data.len() * 3 / 4;
    GbdtTrainer::new(GbdtParams {
        num_trees: 200,
        num_leaves: 32,
        learning_rate: 0.08,
        early_stopping_rounds: Some(30),
        ..Default::default()
    })
    .fit_with_valid(
        &data.xs[..cut],
        &data.ys[..cut],
        &data.xs[cut..],
        &data.ys[cut..],
    )
    .expect("training succeeds")
}

#[test]
fn all_strategies_beat_random_ranking() {
    // With 3 relevant out of 10 candidates, a random ranking has
    // expected AP ~= 0.44; a bottom-ranking gives 0.216. Averaged over
    // several interaction sets, every strategy must beat the paper's
    // adversarial minimum and Gain-Path must do well.
    let sets: [[(usize, usize); 3]; 3] = [
        [(0, 1), (0, 4), (1, 4)], // the paper's Table-2 set
        [(0, 2), (1, 3), (2, 4)],
        [(0, 3), (1, 2), (3, 4)],
    ];
    let strategies = [
        InteractionStrategy::PairGain,
        InteractionStrategy::CountPath,
        InteractionStrategy::GainPath,
        InteractionStrategy::h_stat_default(),
    ];
    let mut mean_ap = vec![0.0; strategies.len()];
    for (si, &pairs) in sets.iter().enumerate() {
        let forest = forest_on_d_second(&pairs, 10 + si as u64);
        let profile = ForestProfile::analyze(&forest);
        let selected: Vec<usize> = (0..NUM_FEATURES).collect();
        let domains = build_domains(&profile, &selected, SamplingStrategy::AllThresholds).unwrap();
        let sample = generate(&forest, &domains, 300, true, 3).unwrap();
        for (ki, &strategy) in strategies.iter().enumerate() {
            let ranked = rank_interactions(&forest, &profile, &selected, strategy, Some(&sample))
                .expect("ranking succeeds");
            assert_eq!(ranked.len(), 10, "all candidate pairs ranked");
            let rel: Vec<bool> = ranked.iter().map(|&(p, _)| pairs.contains(&p)).collect();
            mean_ap[ki] += average_precision(&rel) / sets.len() as f64;
        }
    }
    for (strategy, ap) in strategies.iter().zip(&mean_ap) {
        assert!(
            *ap > 0.35,
            "{} mean AP {} not better than bottom-ranking",
            strategy.name(),
            ap
        );
    }
    // The structural strategies should comfortably beat the Pair-Gain
    // baseline on these strongly-interacting datasets.
    assert!(
        mean_ap[2] >= mean_ap[0] - 0.05,
        "Gain-Path ({}) should not trail Pair-Gain ({}) badly",
        mean_ap[2],
        mean_ap[0]
    );
}

#[test]
fn pipeline_selects_true_interactions() {
    let pairs = [(0, 1), (0, 4), (1, 4)];
    let forest = forest_on_d_second(&pairs, 77);
    let exp = GefExplainer::new(GefConfig {
        num_univariate: NUM_FEATURES,
        num_interactions: 3,
        interaction_strategy: InteractionStrategy::GainPath,
        n_samples: 15_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    assert_eq!(exp.interactions.len(), 3);
    let hits = exp
        .interactions
        .iter()
        .filter(|p| pairs.contains(p))
        .count();
    assert!(
        hits >= 2,
        "expected >= 2/3 true interactions, got {:?}",
        exp.interactions
    );
    // The tensor terms improve fidelity over a no-interaction fit.
    let no_inter = GefExplainer::new(GefConfig {
        num_univariate: NUM_FEATURES,
        num_interactions: 0,
        n_samples: 15_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    assert!(
        exp.fidelity_rmse < no_inter.fidelity_rmse,
        "interactions should reduce RMSE: {} vs {}",
        exp.fidelity_rmse,
        no_inter.fidelity_rmse
    );
}
