//! Cross-method consistency: GEF's explanations must agree in trend
//! with SHAP and LIME (the paper's Sec. 5.3 comparison), and the
//! baselines must satisfy their own axioms against the forest.

use gef::baselines::lime::{explain as lime_explain, scales_from_forest, LimeConfig};
use gef::baselines::pdp::{partial_dependence_1d, shap_dependence};
use gef::baselines::treeshap::shap_values;
use gef::linalg::stats::pearson;
use gef::prelude::*;

fn forest_and_data() -> (Forest, Vec<Vec<f64>>) {
    let mut state = 31u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..3_000).map(|_| vec![next(), next(), next()]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 3.0 * x[0] + (x[1] * 6.0).sin() - 1.5 * x[2])
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 120,
        num_leaves: 16,
        learning_rate: 0.1,
        min_data_in_leaf: 10,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("training succeeds");
    (forest, xs)
}

#[test]
fn gef_spline_trend_matches_shap_dependence() {
    let (forest, xs) = forest_and_data();
    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        n_samples: 15_000,
        sampling: SamplingStrategy::EquiSize(400),
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");

    for feature in 0..3 {
        let curve = exp.component_curve(feature, 25).expect("curve");
        let dep = shap_dependence(&forest, &xs[..150], feature);
        // Evaluate the spline at each SHAP instance's feature value.
        let spline_at: Vec<f64> = dep
            .iter()
            .map(|&(v, _)| {
                curve
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - v)
                            .abs()
                            .partial_cmp(&(b.0 - v).abs())
                            .expect("finite")
                    })
                    .map(|&(_, e, ..)| e)
                    .expect("non-empty curve")
            })
            .collect();
        let phis: Vec<f64> = dep.iter().map(|&(_, p)| p).collect();
        let corr = pearson(&spline_at, &phis);
        assert!(
            corr > 0.8,
            "feature {feature}: GEF/SHAP trend correlation {corr}"
        );
    }
}

#[test]
fn gef_spline_trend_matches_partial_dependence() {
    let (forest, xs) = forest_and_data();
    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        n_samples: 15_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    let grid: Vec<f64> = (1..20).map(|i| i as f64 / 20.0).collect();
    for feature in 0..3 {
        let pd = partial_dependence_1d(&forest, &xs[..200], feature, &grid);
        let term = exp.term_of_feature(feature).expect("selected");
        let spline: Vec<f64> = grid
            .iter()
            .map(|&v| {
                let mut probe = vec![0.5; 3];
                probe[feature] = v;
                exp.gam.component(term, &probe)
            })
            .collect();
        let corr = pearson(&pd, &spline);
        assert!(corr > 0.9, "feature {feature}: GEF/PD correlation {corr}");
    }
}

#[test]
fn shap_local_accuracy_and_sign_agreement_with_gef() {
    let (forest, xs) = forest_and_data();
    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        n_samples: 15_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");

    let mut agree = 0usize;
    let mut total = 0usize;
    for x in xs.iter().take(40) {
        let (phi, base) = shap_values(&forest, x);
        // Local accuracy (axiom).
        let sum: f64 = phi.iter().sum();
        assert!((base + sum - forest.predict_raw(x)).abs() < 1e-8);
        // Sign agreement with GEF contributions for strong features.
        let local = exp.local(x);
        for c in &local.contributions {
            let f = c.features[0];
            if c.contribution.abs() > 0.3 && phi[f].abs() > 0.3 {
                total += 1;
                if (c.contribution > 0.0) == (phi[f] > 0.0) {
                    agree += 1;
                }
            }
        }
    }
    assert!(total > 10, "not enough strong contributions to compare");
    assert!(
        agree as f64 / total as f64 > 0.9,
        "GEF/SHAP sign agreement {agree}/{total}"
    );
}

#[test]
fn lime_signs_match_gef_for_monotone_features() {
    let (forest, _) = forest_and_data();
    let exp = GefExplainer::new(GefConfig {
        num_univariate: 3,
        n_samples: 15_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    let x = [0.5, 0.25, 0.5];
    let lime = lime_explain(
        &forest,
        &x,
        &scales_from_forest(&forest),
        &LimeConfig {
            num_samples: 4_000,
            ..Default::default()
        },
    );
    // Feature 0 has slope +3, feature 2 slope -1.5 everywhere: LIME
    // coefficients and GEF's local slopes must agree in sign.
    assert!(lime.coefficients[0] > 0.0);
    assert!(lime.coefficients[2] < 0.0);
    let term0 = exp.term_of_feature(0).expect("selected");
    let term2 = exp.term_of_feature(2).expect("selected");
    let slope0 =
        exp.gam.component(term0, &[0.6, 0.0, 0.0]) - exp.gam.component(term0, &[0.4, 0.0, 0.0]);
    let slope2 =
        exp.gam.component(term2, &[0.0, 0.0, 0.6]) - exp.gam.component(term2, &[0.0, 0.0, 0.4]);
    assert!(slope0 > 0.0);
    assert!(slope2 < 0.0);
}
