//! The paper's third-party scenario end to end: a model owner exports a
//! forest as a model file; a certification authority — who never sees
//! any data — parses it, explains it with GEF, and archives a JSON
//! explanation report.
//!
//! ```bash
//! cargo run --release --example model_exchange
//! ```

use gef::core::ExplanationReport;
use gef::forest::io::{from_text, to_text};
use gef::prelude::*;

fn main() {
    // ---- Party A: the model owner (has the data) ----
    let xs: Vec<Vec<f64>> = (0..3000)
        .map(|i| {
            vec![
                (i % 101) as f64 / 101.0,
                (i % 83) as f64 / 83.0,
                (i % 7) as f64, // a categorical-ish feature
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] * 9.0).sin() + 0.4 * x[1] + 0.3 * x[2])
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 150,
        num_leaves: 16,
        learning_rate: 0.1,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("training succeeds");
    let model_file = to_text(&forest);
    println!(
        "party A ships a model file: {} bytes, {} trees (data stays home)",
        model_file.len(),
        forest.trees.len()
    );

    // ---- Party B: the auditor (has only the model file) ----
    let received = from_text(&model_file).expect("model file parses and validates");
    let explanation = GefExplainer::new(GefConfig {
        num_univariate: 3,
        num_interactions: 1,
        sampling: SamplingStrategy::EquiSize(400),
        n_samples: 20_000,
        ..Default::default()
    })
    .explain(&received)
    .expect("explanation succeeds");
    println!(
        "auditor's surrogate: fidelity RMSE = {:.4}, R2 = {:.4}",
        explanation.fidelity_rmse, explanation.fidelity_r2
    );
    // Feature 2 has only 7 levels — GEF models it as a factor term.
    let term2 = explanation.term_of_feature(2);
    if let Some(t) = term2 {
        println!(
            "feature x2 detected as {} ({} thresholds in the forest)",
            if explanation.categorical[t] {
                "categorical"
            } else {
                "continuous"
            },
            explanation.profile.thresholds(2).len()
        );
    }

    // Archive a machine-readable report.
    let names: Vec<String> = ["position", "load", "category"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = ExplanationReport::from_explanation(&explanation, Some(&names), 25);
    let json = report.to_json();
    println!(
        "\narchived explanation report: {} bytes of JSON, {} feature curves, {} ranked interactions",
        json.len(),
        report.features.len(),
        report.interactions.len()
    );
    // A later reader reloads it without any model access.
    let reloaded = ExplanationReport::from_json(&json).expect("report parses");
    let top = &reloaded.features[0];
    println!(
        "top feature per the archived report: {} (gain {:.0}, importance {:.3})",
        top.name.as_deref().unwrap_or("?"),
        top.gain,
        top.importance
    );
}
