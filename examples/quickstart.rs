//! Quickstart: distill a gradient-boosted forest into an interpretable
//! GAM without touching the training data.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gef::prelude::*;

fn main() {
    // 1. Someone trains a forest. (Pretend this happens elsewhere and
    //    only the model file reaches us.)
    let xs: Vec<Vec<f64>> = (0..4000)
        .map(|i| {
            let a = (i % 97) as f64 / 97.0;
            let b = (i % 61) as f64 / 61.0;
            let c = (i % 31) as f64 / 31.0;
            vec![a, b, c]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] + (x[1] * 8.0).sin() - (x[2] - 0.5).powi(2) * 4.0)
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 200,
        num_leaves: 16,
        learning_rate: 0.1,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("training succeeds");
    println!(
        "black-box forest: {} trees, {} nodes",
        forest.trees.len(),
        forest.num_nodes()
    );

    // 2. The original data is gone. Explain the forest from its
    //    structure alone.
    let config = GefConfig {
        num_univariate: 3,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(200),
        n_samples: 20_000,
        ..Default::default()
    };
    let explanation = GefExplainer::new(config)
        .explain(&forest)
        .expect("explanation succeeds");
    println!(
        "surrogate GAM fidelity vs forest (held-out D*): RMSE = {:.4}, R2 = {:.4}",
        explanation.fidelity_rmse, explanation.fidelity_r2
    );

    // 3. Global view: each feature's additive effect with a 95% band.
    for &feature in &explanation.selected_features {
        println!("\ncomponent of x{feature} (value, effect, 95% band):");
        for (v, est, lo, hi) in explanation.component_curve(feature, 7).expect("curve") {
            let bar_pos = ((est + 2.0) * 10.0).clamp(0.0, 40.0) as usize;
            println!(
                "  x = {v:5.2}  {est:7.3}  [{lo:7.3}, {hi:7.3}]  {}*",
                " ".repeat(bar_pos)
            );
        }
    }

    // 4. Local view: why does the model predict what it predicts here?
    let instance = [0.8, 0.2, 0.5];
    let local = explanation.local(&instance);
    println!("\nlocal explanation of {instance:?}:");
    print!("{}", explanation.format_local(&local, None));
    println!(
        "forest itself predicts {:.3}; surrogate {:.3}",
        forest.predict(&instance),
        local.prediction
    );

    // 5. Observability: with `GEF_TRACE=summary` a per-stage timing
    //    table lands on stderr; with `GEF_TRACE=json` a structured
    //    report is written to results/telemetry/quickstart.json.
    gef_trace::global().emit("quickstart");
}
