//! The paper's regression case study: explain a forest that predicts
//! superconducting critical temperatures, then use the explanation to
//! find the discontinuity the paper highlights (the WEAM jump) and
//! compare against SHAP.
//!
//! ```bash
//! cargo run --release --example superconductivity
//! ```

use gef::baselines::treeshap::shap_values;
use gef::data::superconductivity::{superconductivity_sim_sized, weam_index};
use gef::prelude::*;

fn main() {
    // Simulated stand-in for UCI Superconductivity (see DESIGN.md).
    let data = superconductivity_sim_sized(8_000, 1);
    let (train, test) = data.train_test_split(0.8, 2);
    let cut = train.len() * 3 / 4;
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 300,
        num_leaves: 32,
        learning_rate: 0.05,
        early_stopping_rounds: Some(40),
        ..Default::default()
    })
    .fit_with_valid(
        &train.xs[..cut],
        &train.ys[..cut],
        &train.xs[cut..],
        &train.ys[cut..],
    )
    .expect("training succeeds");
    let preds = forest
        .predict_batch(&test.xs)
        .expect("no deadline armed for the example");
    println!(
        "forest test RMSE = {:.2} K over {} materials x {} features",
        gef::data::metrics::rmse(&preds, &test.ys),
        data.len(),
        data.num_features()
    );

    // GEF with the paper's Superconductivity configuration: 7 splines,
    // no interactions, Equi-Size sampling.
    let explanation = GefExplainer::new(GefConfig {
        num_univariate: 7,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(1_500),
        n_samples: 30_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("explanation succeeds");
    println!(
        "\nGEF surrogate: fidelity RMSE = {:.2}, R2 = {:.3}",
        explanation.fidelity_rmse, explanation.fidelity_r2
    );
    println!("selected features (by forest gain):");
    for &f in &explanation.selected_features {
        println!(
            "  {:28} gain = {:.0}",
            data.feature_names[f],
            explanation.profile.gain(f)
        );
    }

    // The WEAM discontinuity: scan the learned spline for the largest
    // jump between adjacent grid points.
    let weam = weam_index();
    if explanation.term_of_feature(weam).is_some() {
        let curve = explanation.component_curve(weam, 60).expect("curve");
        let (jump_at, jump) = curve
            .windows(2)
            .map(|w| (w[1].0, w[1].1 - w[0].1))
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .expect("non-trivial curve");
        println!(
            "\nlargest jump of the {} spline: {:+.2} K near value {:.3} \
             (the paper reads the same discontinuity off its Fig. 9)",
            data.feature_names[weam], jump, jump_at
        );
    }

    // Compare with SHAP on one test material.
    let sample = &test.xs[0];
    let local = explanation.local(sample);
    println!("\nGEF local explanation (top 5 terms):");
    for c in local.contributions.iter().take(5) {
        println!(
            "  {:+9.3}  {}",
            c.contribution, data.feature_names[c.features[0]]
        );
    }
    let (phi, base) = shap_values(&forest, sample);
    let mut ranked: Vec<(usize, f64)> = phi.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    println!("SHAP (base {base:.2}), top 5 features:");
    for &(f, v) in ranked.iter().take(5) {
        println!("  {:+9.3}  {}", v, data.feature_names[f]);
    }
}
