//! "Explain to justify": audit an income classifier trained on Census
//! data containing sensitive attributes — the paper's classification
//! case study. A third party (say a certification authority) receives
//! only the model, not the training data, and must understand what
//! drives its decisions.
//!
//! ```bash
//! cargo run --release --example census_audit
//! ```

use gef::data::census::{census_processed, census_sim_sized};
use gef::prelude::*;

fn main() {
    // Simulated stand-in for UCI Adult with the paper's preprocessing
    // (education dropped, categoricals one-hot encoded).
    let data = census_processed(&census_sim_sized(12_000, 1));
    let (train, test) = data.train_test_split(0.8, 2);
    let cut = train.len() * 3 / 4;
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 250,
        num_leaves: 32,
        learning_rate: 0.05,
        early_stopping_rounds: Some(40),
        objective: Objective::BinaryLogistic,
        ..Default::default()
    })
    .fit_with_valid(
        &train.xs[..cut],
        &train.ys[..cut],
        &train.xs[cut..],
        &train.ys[cut..],
    )
    .expect("training succeeds");
    let probs: Vec<f64> = test.xs.iter().map(|x| forest.predict_proba(x)).collect();
    println!(
        "income classifier: AUC = {:.3} on {} held-out people",
        gef::data::metrics::roc_auc(&probs, &test.ys),
        test.len()
    );

    // The auditor's view: 5 splines + 1 interaction, K-Quantile (the
    // paper's Census configuration).
    let explanation = GefExplainer::new(GefConfig {
        num_univariate: 5,
        num_interactions: 1,
        sampling: SamplingStrategy::KQuantile(400),
        interaction_strategy: InteractionStrategy::CountPath,
        n_samples: 30_000,
        ..Default::default()
    })
    .explain(&forest)
    .expect("explanation succeeds");
    println!(
        "\nsurrogate GAM fidelity (probabilities, held-out D*): RMSE = {:.4}",
        explanation.fidelity_rmse
    );
    println!("model is driven by:");
    for &f in &explanation.selected_features {
        println!("  {}", data.feature_names[f]);
    }
    for &(a, b) in &explanation.interactions {
        println!(
            "  interaction: {} x {}",
            data.feature_names[a], data.feature_names[b]
        );
    }

    // The paper reads off Fig. 10 that EducationNum correlates
    // positively with income — verify on the learned spline.
    if let Some(edu) = data.feature_index("education_num") {
        if explanation.term_of_feature(edu).is_some() {
            let curve = explanation.component_curve(edu, 8).expect("curve");
            println!("\neducation_num effect on log-odds (should be increasing):");
            for (v, est, lo, hi) in &curve {
                println!("  {v:5.1} years -> {est:+.3}  [{lo:+.3}, {hi:+.3}]");
            }
            let increasing = curve.last().expect("non-empty").1 > curve[0].1;
            println!(
                "  -> education effect is {}",
                if increasing {
                    "POSITIVE (matches the paper)"
                } else {
                    "NEGATIVE (unexpected!)"
                }
            );
        }
    }

    // Fairness probe: does the surrogate lean on the sensitive columns?
    println!("\nsensitive-attribute check (gain share of total):");
    let total_gain: f64 = (0..data.num_features())
        .map(|f| explanation.profile.gain(f))
        .sum();
    for name in data
        .feature_names
        .iter()
        .filter(|n| n.starts_with("sex=") || n.starts_with("race="))
    {
        let f = data.feature_index(name).expect("known column");
        let share = explanation.profile.gain(f) / total_gain;
        println!("  {name:22} {:.2}%", share * 100.0);
    }
}
